open Hyper_core
module Vfs = Hyper_storage.Vfs
module Storage_error = Hyper_storage.Storage_error
module D = Hyper_diskdb.Diskdb
module Server = Hyper_net.Server
module Client = Hyper_net.Client
module Client_backend = Hyper_net.Client_backend
module Netaddr = Hyper_net.Netaddr

(* Each check gets its own socket: the fuzzer runs many cases per
   process and a lingering close must not collide with the next bind. *)
let next_sock = ref 0

let sock_addr () =
  incr next_sock;
  Netaddr.Unix_sock
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "hyper_netcheck_%d_%d.sock" (Unix.getpid ()) !next_sock))

let layout_of ~level = Layout.make ~doc:1 ~oid_base:0 ~leaf_level:level ()

(* The served subject is the crash-mode diskdb (durable_sync + group
   commit over the faulty VFS) whether or not a crash is armed: one
   configuration, one code path under test. *)
let fresh_disk ~gen_seed ~level =
  let env = Vfs.Faulty.create Vfs.Faulty.quiet in
  let db = D.open_db (Differential.crash_config (Vfs.Faulty.vfs env)) in
  let module G = Generator.Make (D) in
  ignore (G.generate db ~doc:1 ~leaf_level:level ~seed:gen_seed);
  (env, db)

let close_quiet db = try D.close db with Storage_error.Error _ -> ()

let check ~gen_seed ~level ops =
  let ops = ops @ [ Trace.Verify_checks ] in
  let oracle_inst, layout = Differential.fresh_oracle_at ~gen_seed ~level [] in
  let _env, db = fresh_disk ~gen_seed ~level in
  let inst = Backend.Instance ((module D : Backend.S with type t = D.t), db) in
  let addr = sock_addr () in
  let srv = Server.start ~name:"netcheck" ~layout inst addr in
  let c = Client.connect ~backoff_base_s:0.02 ~max_attempts:5 addr in
  let divergence = ref None in
  (try
     List.iteri
       (fun i op ->
         let o = Trace.apply ~layout oracle_inst op in
         let s =
           match Client.call c [ op ] with
           | [ s ] -> s
           | outcomes ->
             Trace.Raised
               (Printf.sprintf "Netcheck_reply_arity_%d"
                  (List.length outcomes))
         in
         if not (Trace.outcome_equal o s) then begin
           divergence :=
             Some
               {
                 Differential.step = i;
                 op;
                 oracle = o;
                 subject = s;
                 backend = "diskdb-wire";
               };
           raise Exit
         end)
       ops
   with Exit -> ());
  Client.close c;
  Server.drain ~grace_s:2.0 srv;
  close_quiet db;
  !divergence

let crash_check ~gen_seed ~level ~crash_after ops =
  let env, db = fresh_disk ~gen_seed ~level in
  let layout = layout_of ~level in
  let inst = Backend.Instance ((module D : Backend.S with type t = D.t), db) in
  let is_crash = function Vfs.Crash -> true | _ -> false in
  let addr = sock_addr () in
  let srv =
    Server.start ~name:"netcheck-crash" ~reraise:is_crash ~layout inst addr
  in
  let c = Client.connect ~backoff_base_s:0.01 ~max_attempts:1 addr in
  Vfs.Faulty.arm_crash env ~after_writes:crash_after ();
  let acked = ref 0 in
  let crash = ref None in
  (try
     List.iteri
       (fun i op ->
         match
           let rid = Client.submit c [ op ] in
           Client.await c rid
         with
         | [ outcome ] ->
           if op = Trace.Commit && outcome = Trace.Done Trace.V_unit then
             incr acked
         | _ -> ()
         | exception Client.Connection_lost _ ->
           (* The server hit the armed crash and died without acking:
              this op is past the acked prefix by construction. *)
           crash := Some (i, op = Trace.Commit);
           raise Exit)
       ops
   with Exit -> ());
  Client.close c;
  Server.kill srv;
  (* Power-fail, disarm, recover — then restart the *server* over the
     recovered store and probe through a fresh wire client, so the
     "acked writes survive" claim is verified end to end. *)
  Vfs.Faulty.set_plan env Vfs.Faulty.quiet;
  Vfs.Faulty.power_fail env;
  let recovered = D.open_db (Differential.crash_config (Vfs.Faulty.vfs env)) in
  let rec_inst =
    Backend.Instance ((module D : Backend.S with type t = D.t), recovered)
  in
  let addr2 = sock_addr () in
  let srv2 = Server.start ~name:"netcheck-recovered" ~layout rec_inst addr2 in
  let c2 = Client.connect ~backoff_base_s:0.02 ~max_attempts:5 addr2 in
  let cb = Client_backend.make c2 in
  let wire_inst = Client_backend.instance cb in
  let probes = Differential.probe_trace layout ops in
  let compare_at n =
    let oracle_inst, _ =
      Differential.fresh_oracle_at ~gen_seed ~level
        (Differential.prefix_through_commit ops n)
    in
    Differential.compare_probes ~layout ~backend:"diskdb-wire-crash"
      oracle_inst wire_inst probes
  in
  let result =
    match !crash with
    | None -> (
      (* Crash point past the trace's writes: plain final-state check. *)
      match compare_at !acked with
      | None -> Differential.Crash_clean { crash_step = None; acked = !acked }
      | Some d ->
        Differential.Crash_diverged
          {
            crash_step = List.length ops;
            acked = !acked;
            in_flight = false;
            divergence = d;
          })
    | Some (step, in_flight) -> (
      match compare_at !acked with
      | None ->
        Differential.Crash_clean { crash_step = Some step; acked = !acked }
      | Some d ->
        if in_flight then
          match compare_at (!acked + 1) with
          | None ->
            Differential.Crash_clean
              { crash_step = Some step; acked = !acked + 1 }
          | Some _ ->
            Differential.Crash_diverged
              { crash_step = step; acked = !acked; in_flight; divergence = d }
        else
          Differential.Crash_diverged
            { crash_step = step; acked = !acked; in_flight; divergence = d })
  in
  Client.close c2;
  Server.kill srv2;
  close_quiet recovered;
  result

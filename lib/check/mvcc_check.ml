module Prng = Hyper_util.Prng
module Sync = Hyper_util.Sync
module VS = Hyper_txn.Version_store
module Trace = Hyper_core.Trace
module Backend = Hyper_core.Backend

type violation = { v_kind : string; v_detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.v_kind v.v_detail

let violation v_kind fmt =
  Printf.ksprintf (fun v_detail -> { v_kind; v_detail }) fmt

(* --- store_check: concurrent snapshots vs writers over one store --- *)

(* Values encode their provenance so a misdirected read names the
   writer that produced it.  Key [k]'s initial image is [-k - 1]
   (distinct from every written value, which is non-negative). *)
let encode ~writer ~iter = (writer * 1_000_000) + iter

let store_check ~seed ~writers ~readers ~keys ~txns_per_writer =
  if writers < 1 || readers < 0 || keys < 1 || txns_per_writer < 1 then
    invalid_arg "Mvcc_check.store_check: bad shape";
  let vs = VS.create ~retain:2 ~gc_every:64 () in
  for k = 0 to keys - 1 do
    ignore (VS.put vs ~key:k (-k - 1) : int)
  done;
  let all_keys = List.init keys (fun k -> k) in
  let first_bad = ref None in
  let bad_mutex = Sync.Mutex.create ~rank:40 "check.mvcc.report" in
  let report v =
    Sync.Mutex.with_lock bad_mutex (fun () ->
        if !first_bad = None then first_bad := Some v)
  in
  let writers_done = ref 0 in
  let writer w =
    Thread.create
      (fun () ->
        let rng = Prng.create (Int64.add seed (Int64.of_int (w * 7919))) in
        for iter = 1 to txns_per_writer do
          let txn = VS.begin_rw vs in
          let nwrites = 1 + Prng.int rng 4 in
          for _ = 1 to nwrites do
            let k = Prng.int rng keys in
            (* Read through the transaction first: the read must be
               either our own pending write or a value as of our
               timestamp — never an unborn (future) value. *)
            (match VS.txn_get txn ~key:k with
            | None -> report (violation "missing-key" "key %d has no version" k)
            | Some _ -> ());
            VS.txn_put txn ~key:k (encode ~writer:w ~iter)
          done;
          Thread.yield ();
          (match VS.commit txn with
          | VS.Committed _ | VS.Conflict _ -> ());
          (* Force pruning races with the pinned snapshots. *)
          if iter mod 32 = 0 then ignore (VS.gc vs : int)
        done;
        Sync.Mutex.with_lock bad_mutex (fun () -> incr writers_done))
      ()
  in
  let all_writers_done () =
    Sync.Mutex.with_lock bad_mutex (fun () -> !writers_done = writers)
  in
  let reader r =
    Thread.create
      (fun () ->
        (* Keep sweeping until every writer has finished, so snapshots
           race both commits and GC for the whole run. *)
        while not (all_writers_done ()) do
          let snap = VS.begin_snapshot vs in
          let ts = VS.snapshot_ts snap in
          let sweep () =
            List.map (fun k -> (k, VS.snapshot_get snap ~key:k)) all_keys
          in
          let first = sweep () in
          Thread.yield ();
          let second = sweep () in
          if first <> second then
            report
              (violation "torn-snapshot"
                 "reader %d: two sweeps of the snapshot at ts %d disagree" r ts);
          (* Validate against history while the pin still protects every
             version at or below [ts] from GC. *)
          List.iter
            (fun (k, got) ->
              let expect =
                let rec find = function
                  | [] -> None
                  | (vts, v) :: rest -> if vts <= ts then Some v else find rest
                in
                find (VS.history vs ~key:k)
              in
              if got <> expect then
                report
                  (violation "stale-read"
                     "reader %d: key %d at ts %d read %s, history says %s" r k
                     ts
                     (match got with
                     | None -> "nothing"
                     | Some v -> string_of_int v)
                     (match expect with
                     | None -> "nothing"
                     | Some v -> string_of_int v)))
            first;
          VS.release snap
        done)
      ()
  in
  let wt = List.init writers (fun w -> writer (w + 1)) in
  let rt = List.init readers (fun r -> reader (r + 1)) in
  List.iter Thread.join wt;
  List.iter Thread.join rt;
  (* Quiescent sanity: with no snapshot pinned, a GC must bound every
     chain by the retain floor. *)
  ignore (VS.gc vs : int);
  List.iter
    (fun k ->
      let n = VS.version_count vs ~key:k in
      if n > 2 then
        report (violation "gc-leak" "key %d kept %d versions past GC" k n))
    all_keys;
  !first_bad

(* --- backend_check: memdb snapshot views vs an oracle replay --- *)

let backend_check ~seed ~gen_seed ~level ~steps =
  let oracle, layout = Differential.oracle_harness ~gen_seed ~level in
  let ops = Gen.trace ~seed ~gen_seed ~level ~steps in
  let live, close = oracle.Differential.h_fresh () in
  let snap_every = max 8 (steps / 4) in
  let in_txn = ref false in
  let applied = ref [] in
  let since_snap = ref 0 in
  let views = ref [] in
  (* views: (position, cloned instance, applied prefix newest-first) *)
  List.iter
    (fun op ->
      (match Trace.apply ~layout live op with
      | o ->
        (match (op, o) with
        | Trace.Begin, Trace.Done _ -> in_txn := true
        | (Trace.Commit | Trace.Abort), _ -> in_txn := false
        | _ -> ()));
      applied := op :: !applied;
      incr since_snap;
      if (not !in_txn) && !since_snap >= snap_every then begin
        since_snap := 0;
        match Backend.instance_snapshot live with
        | None -> ()
        | Some view ->
          views := (List.length !applied, view, !applied) :: !views
      end)
    ops;
  (* Every view is probed only now, after the rest of the trace mutated
     the live database: agreement with the prefix oracle proves the
     clone was both consistent and detached. *)
  let result =
    List.fold_left
      (fun acc (pos, view, rev_prefix) ->
        match acc with
        | Some _ -> acc
        | None -> (
          let prefix = List.rev rev_prefix in
          let frozen, _ =
            Differential.fresh_oracle_at ~gen_seed ~level prefix
          in
          let probes = Differential.probe_trace layout prefix in
          match
            Differential.compare_probes ~layout ~backend:"memdb-snapshot"
              frozen view probes
          with
          | None -> None
          | Some d ->
            Some
              (violation "leaky-snapshot"
                 "view cloned after op %d diverges from its prefix oracle: %s"
                 pos
                 (Format.asprintf "%a" Differential.pp_divergence d))))
      None (List.rev !views)
  in
  close ();
  result

open Hyper_util
open Hyper_core
module M = Hyper_memdb.Memdb

(* Fresh OIDs live far above any generated structure (level 6 has
   ~100k nodes); the unique_id doubles as the oid so created nodes never
   collide with layout uids (1 .. node_count) or each other. *)
let fresh_base = 1_000_000

(* OIDs in this range exist on no backend: used for the deliberate
   invalid-argument probes. *)
let bogus_base = 5_000_000

let words rng n =
  String.concat " "
    (List.init n (fun _ ->
         String.init (1 + Prng.int rng 7) (fun _ -> Prng.lowercase_letter rng)))

let dyn_keys = [| "alpha"; "beta"; "gamma" |]

type st = {
  rng : Prng.t;
  b : M.t;  (** scratch oracle the trace is generated against *)
  inst : Backend.instance;
  layout : Layout.t;
  ops : Trace.op list ref;
  count : int ref;
  mutable next_fresh : int;
  mutable created : Oid.t list;  (** oids created by the trace (may be dead) *)
  mutable graveyard : Oid.t list;  (** oids deleted by the trace *)
}

let emit st op =
  st.ops := op :: !(st.ops);
  incr st.count;
  (* Keep the scratch oracle in lock-step so later picks see real state.
     Outcomes (including errors of the deliberately-invalid ops) are
     irrelevant here; they are recomputed at replay time. *)
  ignore (Trace.apply ~layout:st.layout st.inst op)

let exists st oid =
  (* Memdb signals unknown oids with Invalid_argument; anything else
     (e.g. an armed crash fault) must not be mistaken for "deleted". *)
  match M.kind st.b oid with
  | _ -> true
  | exception Invalid_argument _ -> false

(* A random live node: layout nodes dominate, trace-created nodes mixed
   in.  Falls back to the structure root (never deleted: it always has
   children) when unlucky picks hit deleted nodes. *)
let existing st =
  let rec go tries =
    if tries = 0 then Layout.root st.layout
    else
      let cand =
        match st.created with
        | oid :: _ when Prng.int st.rng 100 < 25 ->
            if Prng.bool st.rng then oid
            else List.nth st.created (Prng.int st.rng (List.length st.created))
        | _ -> Layout.random_node st.layout st.rng
      in
      if exists st cand then cand else go (tries - 1)
  in
  go 8

(* Mostly-live oid, sometimes nonexistent: exercises error parity. *)
let probe_oid st =
  if Prng.int st.rng 100 < 6 then bogus_base + Prng.int st.rng 50
  else existing st

let text_biased st =
  let cand = Layout.random_text st.layout st.rng in
  if Prng.int st.rng 100 < 70 && exists st cand then cand else existing st

let form_biased st =
  let cand = Layout.random_form st.layout st.rng in
  if Prng.int st.rng 100 < 80 && exists st cand then cand else existing st

(* Is [anc] an ancestor of (or equal to) [oid] in the 1-N hierarchy?
   Guards add_child against creating a cycle — closure_1n assumes a
   forest. *)
let rec reaches_up st ~anc oid =
  Oid.equal oid anc
  ||
  match M.parent st.b oid with
  | Some p -> reaches_up st ~anc p
  | None -> false

let parentless st =
  let live =
    List.filter (fun o -> exists st o && M.parent st.b o = None) st.created
  in
  match live with
  | [] -> None
  | l -> Some (List.nth l (Prng.int st.rng (List.length l)))

(* {2 Mutations} — each returns [true] if it emitted something. *)

let gen_create st =
  let oid =
    match st.graveyard with
    | o :: _ when Prng.int st.rng 100 < 15 && not (exists st o) -> o
    | _ ->
        st.next_fresh <- st.next_fresh + 1;
        fresh_base + st.next_fresh
  in
  let payload =
    let r = Prng.int st.rng 100 in
    if r < 55 then Trace.P_internal
    else if r < 85 then Trace.P_text (words st.rng (2 + Prng.int st.rng 5))
    else if r < 97 then
      Trace.P_form (8 + Prng.int st.rng 32, 8 + Prng.int st.rng 32)
    else Trace.P_draw
  in
  let near = if Prng.int st.rng 100 < 30 then Some (existing st) else None in
  emit st
    (Trace.Create
       {
         oid;
         doc = st.layout.Layout.doc;
         uid = oid;
         ten = 1 + Prng.int st.rng 10;
         hundred = 1 + Prng.int st.rng 100;
         million = 1 + Prng.int st.rng 1_000_000;
         near;
         payload;
       });
  st.created <- oid :: st.created;
  st.graveyard <- List.filter (fun o -> not (Oid.equal o oid)) st.graveyard;
  true

let pick_parent_for st child =
  let rec go tries =
    if tries = 0 then None
    else
      let p = existing st in
      if (not (Oid.equal p child)) && not (reaches_up st ~anc:child p) then Some p
      else go (tries - 1)
  in
  go 6

let gen_add_child st =
  let child =
    (* Rarely a nonexistent child: the edge must be rejected with no
       half-applied state on any backend. *)
    if Prng.int st.rng 100 < 5 then Some (bogus_base + Prng.int st.rng 50)
    else parentless st
  in
  match child with
  | None -> false
  | Some child -> (
      match pick_parent_for st child with
      | None -> false
      | Some parent ->
          emit st (Trace.Add_child { parent; child });
          true)

let gen_add_children st =
  (* Distinct parentless children under one parent, batch API. *)
  let rec collect acc n =
    if n = 0 then acc
    else
      match parentless st with
      | Some c when not (List.mem c acc) -> collect (c :: acc) (n - 1)
      | _ -> acc
  in
  match collect [] (2 + Prng.int st.rng 2) with
  | [] | [ _ ] -> false
  | children -> (
      let ok_parent p =
        List.for_all
          (fun c -> (not (Oid.equal p c)) && not (reaches_up st ~anc:c p))
          children
      in
      let rec go tries =
        if tries = 0 then None
        else
          let p = existing st in
          if ok_parent p then Some p else go (tries - 1)
      in
      match go 6 with
      | None -> false
      | Some parent ->
          emit st (Trace.Add_children { parent; children });
          true)

let gen_add_part st =
  let whole = probe_oid st in
  let part = probe_oid st in
  if Oid.equal whole part then false
  else begin
    emit st (Trace.Add_part { whole; part });
    true
  end

let gen_add_parts st =
  let whole = existing st in
  let rec collect acc n =
    if n = 0 then acc
    else
      let p = probe_oid st in
      if (not (Oid.equal p whole)) && not (List.mem p acc) then
        collect (p :: acc) (n - 1)
      else collect acc (n - 1)
  in
  match collect [] (2 + Prng.int st.rng 2) with
  | [] -> false
  | parts ->
      emit st (Trace.Add_parts { whole; parts });
      true

let gen_add_ref st =
  let src = probe_oid st in
  let dst = probe_oid st in
  if Oid.equal src dst then false
  else begin
    emit st
      (Trace.Add_ref
         {
           src;
           dst;
           offset_from = Prng.int st.rng 10;
           offset_to = Prng.int st.rng 10;
         });
    true
  end

let gen_remove_child st =
  let rec go tries =
    if tries = 0 then false
    else
      let child = existing st in
      match M.parent st.b child with
      | Some parent ->
          (* 5%: wrong parent — both backends must reject identically
             without mutating anything. *)
          let parent =
            if Prng.int st.rng 100 < 5 then existing st else parent
          in
          emit st (Trace.Remove_child { parent; child });
          true
      | None -> go (tries - 1)
  in
  go 6

let gen_remove_part st =
  let rec go tries =
    if tries = 0 then false
    else
      let whole = existing st in
      let parts = M.parts st.b whole in
      if Array.length parts = 0 then go (tries - 1)
      else begin
        let part = Prng.choose st.rng parts in
        emit st (Trace.Remove_part { whole; part });
        true
      end
  in
  go 6

let gen_remove_ref st =
  let rec go tries =
    if tries = 0 then false
    else
      let src = existing st in
      let links = M.refs_to st.b src in
      if Array.length links = 0 then go (tries - 1)
      else begin
        let link = Prng.choose st.rng links in
        emit st (Trace.Remove_ref { src; dst = link.Schema.target });
        true
      end
  in
  go 6

let gen_delete st =
  let rec go tries =
    if tries = 0 then false
    else
      let oid = existing st in
      if
        (not (Oid.equal oid (Layout.root st.layout)))
        && Array.length (M.children st.b oid) = 0
      then begin
        emit st (Trace.Delete oid);
        st.graveyard <- oid :: st.graveyard;
        true
      end
      else go (tries - 1)
  in
  go 6

let gen_set_hundred st =
  emit st
    (Trace.Set_hundred
       { oid = probe_oid st; value = Prng.int_in st.rng (-20) 130 });
  true

let gen_set_text st =
  emit st
    (Trace.Set_text
       { oid = text_biased st; value = words st.rng (1 + Prng.int st.rng 8) });
  true

let gen_set_dyn st =
  emit st
    (Trace.Set_dyn
       {
         oid = existing st;
         key = Prng.choose st.rng dyn_keys;
         value = Prng.int st.rng 100;
       });
  true

let gen_text_edit st =
  emit st (Trace.Text_edit (text_biased st));
  true

let gen_form_edit st =
  let oid = form_biased st in
  match M.form st.b oid with
  | bm ->
      let bw = Bitmap.width bm and bh = Bitmap.height bm in
      let w = 1 + Prng.int st.rng (max 1 (bw / 2)) in
      let h = 1 + Prng.int st.rng (max 1 (bh / 2)) in
      let x = Prng.int st.rng (max 1 (bw - w)) in
      let y = Prng.int st.rng (max 1 (bh - h)) in
      emit st (Trace.Form_edit { oid; x; y; w; h });
      true
  | exception Invalid_argument _ -> false

(* Closures 10/14/15 store their result list, and op 12 rewrites
   [hundred] across the closure — all mutations. *)
let gen_closure_mut st =
  let start = existing st in
  (match Prng.int st.rng 4 with
  | 0 -> emit st (Trace.Closure_1n start)
  | 1 -> emit st (Trace.Closure_mn start)
  | 2 -> emit st (Trace.Closure_mnatt { start; depth = 1 + Prng.int st.rng 8 })
  | _ -> emit st (Trace.Closure_1n_att_set start));
  true

let mutations =
  [|
    (20, gen_create);
    (12, gen_add_child);
    (5, gen_add_children);
    (8, gen_add_part);
    (4, gen_add_parts);
    (8, gen_add_ref);
    (8, gen_remove_child);
    (6, gen_remove_part);
    (6, gen_remove_ref);
    (6, gen_delete);
    (8, gen_set_hundred);
    (6, gen_set_text);
    (4, gen_set_dyn);
    (5, gen_text_edit);
    (4, gen_form_edit);
    (6, gen_closure_mut);
  |]

let pick_weighted rng table =
  let total = Array.fold_left (fun a (w, _) -> a + w) 0 table in
  let r = ref (Prng.int rng total) in
  let chosen = ref (snd table.(0)) in
  (try
     Array.iter
       (fun (w, f) ->
         if !r < w then begin
           chosen := f;
           raise Exit
         end
         else r := !r - w)
       table
   with Exit -> ());
  !chosen

let gen_mutation st =
  let rec go tries =
    if tries = 0 then ignore (gen_create st)
    else if not (pick_weighted st.rng mutations st) then go (tries - 1)
  in
  go 4

(* {2 Reads} *)

let gen_read st =
  let l = st.layout in
  let doc = l.Layout.doc in
  let n = l.Layout.node_count in
  match Prng.int st.rng 20 with
  | 0 ->
      emit st
        (Trace.Lookup_unique
           {
             doc;
             uid =
               (if Prng.bool st.rng || st.created = [] then
                  1 + Prng.int st.rng (n + 20)
                else List.nth st.created (Prng.int st.rng (List.length st.created)));
           })
  | 1 ->
      let lo = 1 + Prng.int st.rng n in
      emit st (Trace.Range_unique { doc; lo; hi = lo + Prng.int st.rng 30 })
  | 2 ->
      let lo = Prng.int_in st.rng (-5) 100 in
      emit st (Trace.Range_hundred { doc; lo; hi = lo + Prng.int st.rng 15 })
  | 3 ->
      let lo = 1 + Prng.int st.rng 1_000_000 in
      emit st (Trace.Range_million { doc; lo; hi = lo + Prng.int st.rng 20_000 })
  | 4 -> emit st (Trace.Attrs (probe_oid st))
  | 5 ->
      emit st
        (Trace.Dyn_attr { oid = existing st; key = Prng.choose st.rng dyn_keys })
  | 6 -> emit st (Trace.Children (probe_oid st))
  | 7 -> emit st (Trace.Parent (probe_oid st))
  | 8 -> emit st (Trace.Parts (probe_oid st))
  | 9 -> emit st (Trace.Part_of (probe_oid st))
  | 10 -> emit st (Trace.Refs_to (probe_oid st))
  | 11 -> emit st (Trace.Refs_from (probe_oid st))
  | 12 -> emit st (Trace.Text (text_biased st))
  | 13 -> emit st (Trace.Form_digest (form_biased st))
  | 14 -> emit st (Trace.Scan doc)
  | 15 -> emit st (Trace.Node_count doc)
  | 16 -> emit st (Trace.Closure_1n_att_sum (existing st))
  | 17 -> emit st (Trace.Attrs (existing st))
  | 18 ->
      emit st
        (Trace.Closure_1n_pred
           { start = existing st; x = 1 + Prng.int st.rng 990_000 })
  | _ ->
      emit st
        (Trace.Closure_link_sum
           { start = existing st; depth = 1 + Prng.int st.rng 8 })

let trace ~seed ~gen_seed ~level ~steps =
  let b = M.create () in
  let module G = Generator.Make (M) in
  let layout, _ = G.generate b ~doc:1 ~leaf_level:level ~seed:gen_seed in
  let inst = Backend.Instance ((module M : Backend.S with type t = M.t), b) in
  let st =
    {
      rng = Prng.create seed;
      b;
      inst;
      layout;
      ops = ref [];
      count = ref 0;
      next_fresh = 0;
      created = [];
      graveyard = [];
    }
  in
  while !(st.count) < steps do
    let r = Prng.int st.rng 100 in
    if r < 40 then gen_read st
    else if r < 45 then emit st Trace.Clear_caches
    else if r < 48 then emit st Trace.Verify_checks
    else begin
      emit st Trace.Begin;
      let n = 1 + Prng.int st.rng 6 in
      for _ = 1 to n do
        if Prng.int st.rng 100 < 62 then gen_mutation st else gen_read st
      done;
      emit st (if Prng.int st.rng 100 < 85 then Trace.Commit else Trace.Abort)
    end
  done;
  List.rev !(st.ops)

(** Failover fuzzing: crash the primary, promote, diff the survivor.

    Each case builds a replicated diskdb primary (crash-mode
    configuration: durable sync, faulty in-memory VFS), runs a
    generated trace with an armed primary crash point, optional replica
    crash/restart and optional message-level link faults, then promotes
    the most-caught-up live replica and opens its files as an ordinary
    store.

    The promoted state is compared — with the differential fuzzer's
    exhaustive probes — against a fresh memdb oracle replaying exactly
    the trace prefix covering the survivor's [k] applied commits:

    - {e prefix consistency} (every policy): the diff must be clean —
      a failover may lose a tail of unacknowledged transactions but
      never partial or reordered state;
    - {e acked durability} (sync-one and quorum, while dead replicas at
      promotion stay below the policy's required ack count): every
      commit acknowledged to the client is within the prefix,
      [acked <= k]. *)

type fcase = {
  fo_seed : int64;  (** trace seed and link fault seed *)
  fo_gen_seed : int64;
  fo_level : int;
  fo_steps : int;
  fo_policy : Hyper_repl.Repl.policy;
  fo_replicas : int;
  fo_crash_after : int;
      (** primary crash point in mutating vfs ops; 0 = no crash *)
  fo_net_faults : bool;
  fo_kill_at : (int * int) option;  (** (replica index, op step) to crash *)
  fo_restart_at : int option;  (** op step to restart the killed replica *)
  fo_retain : int;  (** retained records; small forces snapshot catch-up *)
  fo_snapshot_lag : int;
}

val pp_fcase : Format.formatter -> fcase -> unit

type report = {
  r_case : fcase;
  r_acked : int;
  r_survivor : int;
  r_survivor_commits : int;
  r_crashed : bool;
  r_degraded : bool;
  r_snapshots : int;
  r_replays : int;
  r_acked_lost : bool;
  r_divergence : Differential.divergence option;
}

val ok : report -> bool
(** No acked commit lost and a clean survivor diff. *)

val pp_report : Format.formatter -> report -> unit

val failover_check : fcase -> report

val save_repro : path:string -> fcase -> unit
val load_repro : path:string -> fcase
(** @raise Failure on a malformed file. *)

open Hyper_core
module Vfs = Hyper_storage.Vfs
module Storage_error = Hyper_storage.Storage_error
module D = Hyper_diskdb.Diskdb
module Link = Hyper_net.Channel.Link
module Repl = Hyper_repl.Repl
module Replica = Hyper_repl.Repl.Replica
module Cluster = Hyper_repl.Repl.Cluster

type fcase = {
  fo_seed : int64;  (** trace seed and link fault seed *)
  fo_gen_seed : int64;
  fo_level : int;
  fo_steps : int;
  fo_policy : Repl.policy;
  fo_replicas : int;
  fo_crash_after : int;  (** primary crash point in mutating vfs ops; 0 = no crash *)
  fo_net_faults : bool;  (** drop/duplicate/reorder/delay on the links *)
  fo_kill_at : (int * int) option;  (** (replica index, op step) to crash *)
  fo_restart_at : int option;  (** op step to restart the killed replica *)
  fo_retain : int;  (** retained log records (small forces snapshot catch-up) *)
  fo_snapshot_lag : int;
}

let pp_fcase ppf c =
  Format.fprintf ppf
    "seed=%Ld gen=%Ld level=%d steps=%d policy=%s replicas=%d crash@%d \
     net=%b kill=%s restart=%s retain=%d snap_lag=%d"
    c.fo_seed c.fo_gen_seed c.fo_level c.fo_steps
    (Repl.policy_to_string c.fo_policy)
    c.fo_replicas c.fo_crash_after c.fo_net_faults
    (match c.fo_kill_at with
    | Some (r, s) -> Printf.sprintf "r%d@%d" r s
    | None -> "-")
    (match c.fo_restart_at with Some s -> string_of_int s | None -> "-")
    c.fo_retain c.fo_snapshot_lag

type report = {
  r_case : fcase;
  r_acked : int;  (** commits acknowledged to the client *)
  r_survivor : int;  (** promoted replica index *)
  r_survivor_commits : int;  (** commits present on the survivor *)
  r_crashed : bool;  (** the primary crash point fired *)
  r_degraded : bool;  (** primary went read-only on quorum loss *)
  r_snapshots : int;  (** snapshot catch-ups shipped *)
  r_replays : int;  (** log-replay catch-ups shipped *)
  r_acked_lost : bool;  (** an acked commit is missing on the survivor *)
  r_divergence : Differential.divergence option;
}

let ok r = (not r.r_acked_lost) && r.r_divergence = None

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%a@,acked=%d survivor=r%d commits=%d crashed=%b degraded=%b \
     snapshots=%d replays=%d%s%a@]"
    pp_fcase r.r_case r.r_acked r.r_survivor r.r_survivor_commits r.r_crashed
    r.r_degraded r.r_snapshots r.r_replays
    (if r.r_acked_lost then " ACKED-COMMIT-LOST" else "")
    (fun ppf -> function
      | None -> ()
      | Some d ->
        Format.fprintf ppf "@,%a" Differential.pp_divergence d)
    r.r_divergence

let layout_of ~level = Layout.make ~doc:1 ~oid_base:0 ~leaf_level:level ()

(* Replica acks a commit needs beyond the primary's own vote, mirroring
   the cluster's policy arithmetic. *)
let required_acks policy replicas =
  match policy with
  | Repl.Async -> 0
  | Repl.Sync_one -> 1
  | Repl.Quorum -> (replicas + 1) / 2

(* One failover scenario end to end: build a replicated primary over
   the generated database, run the trace with the configured primary
   crash point / replica kill / link faults, promote the best survivor,
   open it as an ordinary store and diff it — with the differential
   fuzzer's exhaustive probes — against a fresh oracle replaying
   exactly the survivor's committed prefix.

   Two invariants:
   - {e prefix consistency} (all policies): the survivor equals the
     oracle at some commit-count prefix k of the trace — replica logs
     are gap-free prefixes, so nothing partial and nothing reordered
     survives a failover;
   - {e acked durability} (sync-one / quorum, while the number of dead
     replicas at promotion is below the policy's required ack count):
     every client-acknowledged commit is within that prefix, acked <= k. *)
let failover_check (c : fcase) =
  let ops =
    Gen.trace ~seed:c.fo_seed ~gen_seed:c.fo_gen_seed ~level:c.fo_level
      ~steps:c.fo_steps
  in
  let layout = layout_of ~level:c.fo_level in
  let env = Vfs.Faulty.create Vfs.Faulty.quiet in
  let vfs = Vfs.Faulty.vfs env in
  let db = D.open_db (Differential.crash_config vfs) in
  let module G = Generator.Make (D) in
  ignore (G.generate db ~doc:1 ~leaf_level:c.fo_level ~seed:c.fo_gen_seed);
  (* The cluster forms after generation, so replica commit counts map
     1:1 onto the trace's commit prefix. *)
  let replicas =
    List.init c.fo_replicas (fun i ->
        Replica.create ~name:(Printf.sprintf "s%Ld-r%d" c.fo_seed i) ())
  in
  let cfg =
    { Cluster.default_config with
      Cluster.policy = c.fo_policy;
      retain_records = c.fo_retain;
      snapshot_lag = c.fo_snapshot_lag;
      link_plan =
        (if c.fo_net_faults then Link.faulty ~seed:c.fo_seed
         else Link.reliable) }
  in
  let cluster =
    Cluster.create ~cfg ~engine:(D.engine db) ~vfs ~path:"/fuzz/disk.db"
      ~replicas ()
  in
  let inst = Backend.Instance ((module D : Backend.S with type t = D.t), db) in
  if c.fo_crash_after > 0 then
    Vfs.Faulty.arm_crash env ~after_writes:c.fo_crash_after ();
  let is_crash = function Vfs.Crash -> true | _ -> false in
  let acked = ref 0 in
  let crashed = ref false in
  (try
     List.iteri
       (fun i op ->
         (match c.fo_kill_at with
         | Some (r, at) when at = i -> Cluster.kill_replica cluster r
         | Some _ | None -> ());
         (match (c.fo_restart_at, c.fo_kill_at) with
         | Some at, Some (r, _) when at = i -> Cluster.restart_replica cluster r
         | (Some _ | None), _ -> ());
         if i > 0 && i mod 16 = 0 then Cluster.heartbeat cluster;
         match Trace.apply ~reraise:is_crash ~layout inst op with
         | outcome ->
           if op = Trace.Commit && outcome = Trace.Done Trace.V_unit then
             incr acked
         | exception Vfs.Crash ->
           crashed := true;
           raise Exit)
       ops
   with Exit -> ());
  (* A surviving primary settles its tail (async mode ships without
     waiting); a crashed one is gone and must not be touched. *)
  if not !crashed then Cluster.heartbeat cluster;
  let dead =
    let n = ref 0 in
    for i = 0 to Cluster.n_replicas cluster - 1 do
      if not (Replica.up (Cluster.replica cluster i)) then incr n
    done;
    !n
  in
  let counters = Cluster.counters cluster in
  let survivor_idx, survivor = Cluster.promote cluster in
  let k = Replica.applied_commits survivor in
  let recovered =
    D.open_db
      { (Differential.crash_config (Replica.vfs survivor)) with
        D.path = Replica.path survivor }
  in
  let rec_inst =
    Backend.Instance ((module D : Backend.S with type t = D.t), recovered)
  in
  let probes = Differential.probe_trace layout ops in
  let oracle_inst, _ =
    Differential.fresh_oracle_at ~gen_seed:c.fo_gen_seed ~level:c.fo_level
      (Differential.prefix_through_commit ops k)
  in
  let divergence =
    Differential.compare_probes ~layout
      ~backend:("failover-" ^ Repl.policy_to_string c.fo_policy)
      oracle_inst rec_inst probes
  in
  (try D.close recovered with Storage_error.Error _ -> ());
  (* Acked durability is a promise only while failures stay below the
     ack requirement: with [required] replica acks per commit, up to
     [required - 1] replica losses (plus the primary) cannot take the
     last acked commit with them. *)
  let guarantee = dead < required_acks c.fo_policy c.fo_replicas in
  { r_case = c;
    r_acked = !acked;
    r_survivor = survivor_idx;
    r_survivor_commits = k;
    r_crashed = !crashed;
    r_degraded = Cluster.degraded cluster;
    r_snapshots = counters.Cluster.snapshots;
    r_replays = counters.Cluster.replays;
    r_acked_lost = guarantee && !acked > k;
    r_divergence = divergence }

(* ------------------------------------------------------------------ *)
(* Repro files: same spirit as Differential.save_repro — enough fields
   to rebuild the fcase exactly, one per line. *)

let save_repro ~path (c : fcase) =
  let oc = open_out path in
  Printf.fprintf oc "# hyperfuzz-failover v1\n";
  Printf.fprintf oc "seed %Ld\n" c.fo_seed;
  Printf.fprintf oc "gen_seed %Ld\n" c.fo_gen_seed;
  Printf.fprintf oc "level %d\n" c.fo_level;
  Printf.fprintf oc "steps %d\n" c.fo_steps;
  Printf.fprintf oc "policy %s\n" (Repl.policy_to_string c.fo_policy);
  Printf.fprintf oc "replicas %d\n" c.fo_replicas;
  Printf.fprintf oc "crash_after %d\n" c.fo_crash_after;
  Printf.fprintf oc "net_faults %b\n" c.fo_net_faults;
  (match c.fo_kill_at with
  | Some (r, s) -> Printf.fprintf oc "kill %d %d\n" r s
  | None -> ());
  (match c.fo_restart_at with
  | Some s -> Printf.fprintf oc "restart %d\n" s
  | None -> ());
  Printf.fprintf oc "retain %d\n" c.fo_retain;
  Printf.fprintf oc "snapshot_lag %d\n" c.fo_snapshot_lag;
  close_out oc

let load_repro ~path =
  let ic = open_in path in
  let fail fmt = Printf.ksprintf (fun s -> failwith (path ^ ": " ^ s)) fmt in
  let case =
    ref
      { fo_seed = 0L; fo_gen_seed = 0L; fo_level = 4; fo_steps = 0;
        fo_policy = Repl.Async; fo_replicas = 2; fo_crash_after = 0;
        fo_net_faults = false; fo_kill_at = None; fo_restart_at = None;
        fo_retain = 4096; fo_snapshot_lag = 1024 }
  in
  let kill = ref None in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" || line.[0] = '#' then ()
       else
         match String.split_on_char ' ' line with
         | [ "seed"; v ] -> case := { !case with fo_seed = Int64.of_string v }
         | [ "gen_seed"; v ] ->
           case := { !case with fo_gen_seed = Int64.of_string v }
         | [ "level"; v ] -> case := { !case with fo_level = int_of_string v }
         | [ "steps"; v ] -> case := { !case with fo_steps = int_of_string v }
         | [ "policy"; v ] -> (
           match Repl.policy_of_string v with
           | Some p -> case := { !case with fo_policy = p }
           | None -> fail "unknown policy %s" v)
         | [ "replicas"; v ] ->
           case := { !case with fo_replicas = int_of_string v }
         | [ "crash_after"; v ] ->
           case := { !case with fo_crash_after = int_of_string v }
         | [ "net_faults"; v ] ->
           case := { !case with fo_net_faults = bool_of_string v }
         | [ "kill"; r; s ] -> kill := Some (int_of_string r, int_of_string s)
         | [ "restart"; v ] ->
           case := { !case with fo_restart_at = Some (int_of_string v) }
         | [ "retain"; v ] -> case := { !case with fo_retain = int_of_string v }
         | [ "snapshot_lag"; v ] ->
           case := { !case with fo_snapshot_lag = int_of_string v }
         | _ -> fail "malformed line %S" line
     done
   with
  | End_of_file -> close_in ic
  | e ->
    close_in ic;
    raise e);
  { !case with fo_kill_at = !kill }

(** Seed-driven trace generation for the differential fuzzer.

    A trace is generated against a scratch in-memory oracle so that op
    arguments stay (mostly) valid as the database evolves: the generator
    applies each op to the scratch database the moment it emits it and
    draws the next op's inputs from the resulting state.  All randomness
    comes from the seed — equal [(seed, gen_seed, level, steps)] yield
    equal traces.

    Shape invariants the generated traces maintain (and shrinking
    preserves):
    - every mutation happens inside a [Begin] … [Commit]/[Abort] block
      (the disk engines require it; memdb merely tolerates the
      opposite);
    - transaction blocks are never nested and always closed;
    - [Clear_caches] only appears outside a block;
    - the 1-N graph stays acyclic (reparenting is checked against the
      scratch oracle), so [closure_1n] always terminates.

    A small fraction of ops is deliberately invalid (unknown OIDs,
    missing edges, payload-kind mismatches) so that {e error behaviour}
    is differentially compared too. *)

val trace :
  seed:int64 -> gen_seed:int64 -> level:int -> steps:int -> Hyper_core.Trace.op list
(** [gen_seed]/[level] describe the generated database the trace runs
    against (they must match the fixture the trace is replayed on);
    [steps] is the approximate op count (blocks are never cut short). *)

(** Differential checking over the wire: the socket stack
    ({!Hyper_net.Wire} codec, {!Hyper_net.Server} session layer,
    {!Hyper_net.Client}) in front of a diskdb subject, against the
    local memdb oracle.

    {!check} replays a generated trace one op per request and compares
    the outcomes the server sent back — the wire codec round-trips
    {!Hyper_core.Trace.outcome} exactly, so agreement means framing,
    session and transaction plumbing added nothing and lost nothing.

    {!crash_check} arms a {!Hyper_storage.Vfs.Faulty} crash under the
    served diskdb.  When it fires the server dies {e without acking the
    in-flight request} (acked-prefix discipline), the client sees the
    connection drop, the store is power-failed and recovered, a fresh
    server is started over it, and the recovered state is probed {e
    through a new wire client} against an oracle replay of the acked
    commit prefix (or acked+1 when the crash interrupted the commit),
    reusing {!Differential}'s probe machinery. *)

open Hyper_core

val check :
  gen_seed:int64 -> level:int -> Trace.op list ->
  Differential.divergence option
(** Serve a fresh diskdb over a unix socket, replay the trace through a
    wire client, compare every outcome with the memdb oracle.  Appends
    a trailing [Verify_checks] like {!Differential.check}. *)

val crash_check :
  gen_seed:int64 ->
  level:int ->
  crash_after:int ->
  Trace.op list ->
  Differential.crash_report
(** Crash the served diskdb after [crash_after] mutating VFS ops,
    recover, restart the server, and verify the acked prefix over the
    wire.  The crash-point space is {!Differential.crash_writes} — the
    server applies the same ops, so the write count is identical. *)

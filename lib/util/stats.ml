type t = {
  mutable values : float array;
  mutable n : int;
  mutable sum : float;
  (* Welford running moments: the naive sum-of-squares formula loses all
     precision when the mean dwarfs the spread (e.g. absolute-nanosecond
     samples), and can even go negative. *)
  mutable mean_ : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { values = Array.make 16 0.0; n = 0; sum = 0.0; mean_ = 0.0; m2 = 0.0;
    lo = infinity; hi = neg_infinity }

let add t x =
  if Float.is_nan x then invalid_arg "Stats.add: NaN sample";
  if t.n = Array.length t.values then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.values 0 bigger 0 t.n;
    t.values <- bigger
  end;
  t.values.(t.n) <- x;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean_ in
  t.mean_ <- t.mean_ +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.mean_

let stddev t =
  if t.n < 2 then 0.0
  else sqrt (Float.max (t.m2 /. float_of_int (t.n - 1)) 0.0)

let min t =
  if t.n = 0 then invalid_arg "Stats.min: empty series";
  t.lo

let max t =
  if t.n = 0 then invalid_arg "Stats.max: empty series";
  t.hi

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty series";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.sub t.values 0 t.n in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (t.n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median t = percentile t 50.0

let samples t = Array.sub t.values 0 t.n

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec print ?(indent = 0) buf v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        print ~indent:(indent + 2) buf item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        print ~indent:(indent + 2) buf item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected %C" ch)

let lit c word v =
  if
    c.pos + String.length word <= String.length c.s
    && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    v
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.s then error c "bad \\u escape";
        let hex = String.sub c.s (c.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with Failure _ -> error c "bad \\u escape"
        in
        (* ASCII only; anything else round-trips as '?' — the bench
           files this parser exists for never contain non-ASCII. *)
        Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
        c.pos <- c.pos + 4
      | _ -> error c "bad escape");
      c.pos <- c.pos + 1;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some f -> f
  | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> lit c "true" (Bool true)
  | Some 'f' -> lit c "false" (Bool false)
  | Some 'n' -> lit c "null" Null
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> Num (parse_number c)

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

(* --- accessors --- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

(** Minimal monotonic clock (nanoseconds).

    Reads [clock_gettime(CLOCK_MONOTONIC)] through a C stub, so readings
    are immune to NTP steps and [settimeofday].  On platforms without a
    monotonic clock it falls back to [Unix.gettimeofday] with a
    non-decreasing clamp; either way successive calls never go
    backwards, so timing deltas, spans and histogram observations can
    never be negative.  The epoch is arbitrary (typically boot time):
    only differences between readings are meaningful. *)

val now_ns : unit -> int64

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
}

let create ?(initial_size = 64) ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { cap = capacity; table = Hashtbl.create initial_size; head = None;
    tail = None }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with
  | Some h -> h.prev <- Some n
  | None -> t.tail <- Some n);
  t.head <- Some n

let mem t k = Hashtbl.mem t.table k

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
    unlink t n;
    push_front t n;
    Some n.value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some victim ->
    unlink t victim;
    Hashtbl.remove t.table victim.key

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    unlink t n;
    push_front t n
  | None ->
    if Hashtbl.length t.table >= t.cap then evict_lru t;
    let n = { key = k; value = v; prev = None; next = None } in
    push_front t n;
    Hashtbl.add t.table k n

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let iter f t = Hashtbl.iter (fun k n -> f k n.value) t.table

external monotonic_ns : unit -> int64 = "hyper_mtime_monotonic_ns"

(* Last value handed out.  On the CLOCK_MONOTONIC path this never
   regresses by construction; the clamp exists for the gettimeofday
   fallback, where an NTP step can pull the wall clock backwards.  The
   ref is racy under threads, but the failure mode is returning a
   slightly stale (still monotone) reading, never a regression below
   what this thread last observed through a data dependency. *)
let last = ref 0L

let fallback_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let now_ns () =
  let t = monotonic_ns () in
  let t = if Int64.compare t 0L >= 0 then t else fallback_ns () in
  let prev = !last in
  if Int64.compare t prev > 0 then begin
    last := t;
    t
  end
  else prev

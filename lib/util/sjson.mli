(** Minimal JSON: just enough to write and read the committed benchmark
    trajectory files ([BENCH_*.json]) without an external dependency.

    Numbers are floats throughout (the usual JSON compromise); strings
    are ASCII — [\u] escapes outside ASCII parse as ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation and a trailing newline —
    stable output, so committed files diff cleanly. *)

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup; [None] on a non-object or a missing key. *)

val to_num : t -> float option
val to_str : t -> string option
val to_list : t -> t list option

(** Instrumented synchronisation primitives — the only way code outside
    [lib/util] is allowed to create mutexes and condition variables (the
    [sync-wrapper-only] lint rule enforces it).

    In plain mode every operation is a single branch over the stdlib
    primitive — the same disabled-by-default fast-path pattern as
    [Hyper_obs].  With the lockdep layer enabled ([HYPER_LOCKDEP=1] in
    the environment, or {!Lockdep.enable}) every acquisition also:

    - records the acquiring thread's held-lock set;
    - checks the declared rank order: taking a lock while holding
      another of higher or equal rank (different lock class) is a
      rank-violation report;
    - maintains a global lock-order graph keyed by lock {e class} (the
      name given at {!Mutex.create} — every instance created under one
      name is the same class, like lockdep's classes): acquiring B while
      holding A inserts the edge A→B, and an insert that closes a cycle
      is reported as a {e would-deadlock} with both acquisition stacks —
      the one recorded when the earlier edge was created and the one
      closing the cycle now;
    - detects re-entrant acquisition of the same instance and raises
      {!Lockdep.Deadlock} instead of hanging;
    - feeds per-lock contention and hold-time events to the registered
      instrument hook ([lib/obs] installs one exporting
      [hyper_lock_held_ns], [hyper_lock_wait_ns], [hyper_lock_waiters]
      and [hyper_lock_contended_total], labelled by lock class).

    Edges between two instances of the {e same} class are not tracked:
    with per-name classes an A→A edge cannot be told apart from a
    re-entrant acquisition, and the codebase's same-class nestings
    (e.g. two engines' group-commit schedulers during replication) are
    instance-disjoint by construction.

    When [HYPER_LOCKDEP=1] is set, an [at_exit] hook prints any
    accumulated reports to stderr and exits with status 70, so any test
    or fuzz binary that would deadlock fails its run even if every
    assertion passed. *)

module Mutex : sig
  type t

  val create : ?rank:int -> string -> t
  (** [create ?rank name] makes a named mutex.  [name] is the lock
      class for the order graph and the metrics label; follow the
      [area.module.role] convention ("net.server.engine").  [rank]
      places the class in the declared hierarchy checked by lockdep and
      by the [lock-order] lint rule: locks must be acquired in strictly
      increasing rank order (outermost = lowest).  Unranked locks are
      exempt from rank checks but still tracked in the order graph. *)

  val name : t -> string
  val rank : t -> int option

  val lock : t -> unit
  (** @raise Lockdep.Deadlock when lockdep is enabled and the calling
      thread already holds [t] (a guaranteed self-deadlock). *)

  val try_lock : t -> bool
  val unlock : t -> unit

  val with_lock : t -> (unit -> 'a) -> 'a
  (** [lock], run, [unlock] under [Fun.protect]. *)
end

module Condition : sig
  type t

  val create : unit -> t

  val wait : t -> Mutex.t -> unit
  (** Releases the mutex for the duration of the wait in the lockdep
      held-set too, so a signaller's acquisition is not misread as a
      contention edge against the waiter. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

(** {2 Instrumentation events} *)

type event =
  | Ev_acquired of { lock : string; wait_ns : float; contended : bool }
      (** the acquisition completed; [wait_ns] is time spent blocked *)
  | Ev_released of { lock : string; held_ns : float }
  | Ev_waiting of { lock : string; delta : int }
      (** a waiter appeared ([+1]) or was admitted ([-1]) *)

val set_instrument_hook : (event -> unit) -> unit
(** At most one hook; [lib/obs] installs the metrics exporter at link
    time.  Events fire only while lockdep is enabled. *)

(** {2 The detector} *)

module Lockdep : sig
  type kind = Would_deadlock | Rank_violation | Reentrant_lock

  type report = {
    kind : kind;
    lock : string;  (** class being acquired when the problem surfaced *)
    held : string list;  (** classes the thread held, innermost first *)
    cycle : string list;
        (** [Would_deadlock]: the class cycle, starting and ending at
            [lock]; empty otherwise *)
    message : string;
    stack_now : string;  (** acquisition stack that closed the cycle *)
    stack_prior : string;
        (** stack recorded when the conflicting edge was first inserted;
            empty for rank/re-entrance reports *)
  }

  exception Deadlock of report
  (** Raised on re-entrant acquisition (the one case where continuing
      would hang the calling thread unconditionally). *)

  val enable : unit -> unit
  (** Switches the detector on and resets held-sets, the order graph
      and accumulated reports. *)

  val disable : unit -> unit
  val enabled : unit -> bool

  val reports : unit -> report list
  (** Oldest first.  Each distinct (kind, edge/pair) is reported once. *)

  val clear : unit -> unit
  (** Drop accumulated reports and the order graph; held-sets survive
      (locks currently held stay tracked). *)

  val edges : unit -> (string * string) list
  (** The order graph's edges, sorted — for tests and debugging. *)

  val check_exn : unit -> unit
  (** @raise Deadlock with the first accumulated report, if any. *)

  val report_to_string : report -> string
end

/* Monotonic clock for Mtime_stub.  CLOCK_MONOTONIC is immune to NTP
   steps and settimeofday, which is the whole point: benchmark timings
   must never go negative because the wall clock jumped mid-run.
   Returns -1 when the platform has no monotonic clock so the OCaml
   side can fall back to a clamped gettimeofday. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

#include <stdint.h>
#include <time.h>

CAMLprim value hyper_mtime_monotonic_ns(value unit)
{
  CAMLparam1(unit);
#ifdef CLOCK_MONOTONIC
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0) {
    int64_t ns = (int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec;
    CAMLreturn(caml_copy_int64(ns));
  }
#endif
  CAMLreturn(caml_copy_int64((int64_t)-1));
}

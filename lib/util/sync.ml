(* The rest of the tree's only mutex/condition source (lint rule
   [sync-wrapper-only]).  Plain mode is one branch over the stdlib
   primitive; lockdep mode layers a held-set + lock-order-graph
   detector on every acquisition.  This file is the single place in
   the repository allowed to touch [Stdlib.Mutex]/[Condition]
   directly. *)

module Raw_mutex = Mutex
module Raw_condition = Condition

(* Single-branch fast path, same pattern as Hyper_obs. *)
let on = ref false

type event =
  | Ev_acquired of { lock : string; wait_ns : float; contended : bool }
  | Ev_released of { lock : string; held_ns : float }
  | Ev_waiting of { lock : string; delta : int }

let hook : (event -> unit) ref = ref (fun _ -> ())
let set_instrument_hook f = hook := f
let emit ev = !hook ev

type mutex = {
  m : Raw_mutex.t;
  mx_name : string;
  mx_rank : int option;
  id : int;  (* instance identity, for re-entrance detection *)
}

let next_id =
  let c = ref 0
  and m = Raw_mutex.create () in
  fun () ->
    Raw_mutex.lock m;
    incr c;
    let v = !c in
    Raw_mutex.unlock m;
    v

(* {2 Detector state}

   All state below is guarded by [state_m].  The guard is never held
   across a blocking acquisition of a user lock — bookkeeping happens
   strictly before or after the real [Raw_mutex.lock]. *)

let state_m = Raw_mutex.create ()

let locked_state f =
  Raw_mutex.lock state_m;
  Fun.protect ~finally:(fun () -> Raw_mutex.unlock state_m) f

type held = { hm : mutex; since : int64; stack : string }

(* thread id -> held list, innermost first *)
let held_by : (int, held list) Hashtbl.t = Hashtbl.create 64

(* class -> (successor class -> stack at first insertion) *)
let graph : (string, (string, string) Hashtbl.t) Hashtbl.t = Hashtbl.create 64

(* (outer class, inner class) pairs already reported as rank
   violations, so a hot path misordering reports once, not per call. *)
let rank_reported : (string * string, unit) Hashtbl.t = Hashtbl.create 16

module Lockdep = struct
  type kind = Would_deadlock | Rank_violation | Reentrant_lock

  type report = {
    kind : kind;
    lock : string;
    held : string list;
    cycle : string list;
    message : string;
    stack_now : string;
    stack_prior : string;
  }

  exception Deadlock of report

  let reports_rev : report list ref = ref []

  let kind_to_string = function
    | Would_deadlock -> "would-deadlock"
    | Rank_violation -> "rank-violation"
    | Reentrant_lock -> "re-entrant lock"

  let report_to_string r =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "lockdep %s: %s\n" (kind_to_string r.kind) r.message);
    if r.cycle <> [] then
      Buffer.add_string b
        (Printf.sprintf "  cycle: %s\n" (String.concat " -> " r.cycle));
    if r.held <> [] then
      Buffer.add_string b
        (Printf.sprintf "  held (innermost first): %s\n"
           (String.concat ", " r.held));
    if r.stack_now <> "" then
      Buffer.add_string b ("  acquisition closing the cycle:\n" ^ r.stack_now);
    if r.stack_prior <> "" then
      Buffer.add_string b ("  earlier acquisition creating the reverse edge:\n"
                           ^ r.stack_prior);
    Buffer.contents b

  let clear_graph () =
    Hashtbl.reset graph;
    Hashtbl.reset rank_reported

  let enable () =
    locked_state (fun () ->
        Hashtbl.reset held_by;
        clear_graph ();
        reports_rev := []);
    on := true

  let disable () = on := false
  let enabled () = !on

  let reports () = List.rev !reports_rev

  let clear () =
    locked_state (fun () ->
        clear_graph ();
        reports_rev := [])

  let edges () =
    locked_state (fun () ->
        List.sort compare
          (Hashtbl.fold
             (fun src succs acc ->
               Hashtbl.fold (fun dst _ acc -> (src, dst) :: acc) succs acc)
             graph []))

  let check_exn () =
    match reports () with [] -> () | r :: _ -> raise (Deadlock r)
end

open Lockdep

let capture_stack () =
  Printexc.raw_backtrace_to_string (Printexc.get_callstack 24)

let held_of tid = Option.value ~default:[] (Hashtbl.find_opt held_by tid)

let held_names held = List.map (fun h -> h.hm.mx_name) held

(* Path from [src] to [dst] through the order graph, if any. *)
let find_path src dst =
  let visited = Hashtbl.create 16 in
  let rec go n =
    if String.equal n dst then Some [ n ]
    else if Hashtbl.mem visited n then None
    else begin
      Hashtbl.add visited n ();
      match Hashtbl.find_opt graph n with
      | None -> None
      | Some succs ->
        Hashtbl.fold
          (fun m _ acc ->
            match acc with
            | Some _ -> acc
            | None -> (
              match go m with Some p -> Some (n :: p) | None -> None))
          succs None
    end
  in
  go src

let add_report r = reports_rev := r :: !reports_rev

(* Pre-acquisition bookkeeping: re-entrance, rank order, graph edges.
   Runs under [state_m]; raises (after releasing it, via Fun.protect in
   [locked_state]) only for re-entrance. *)
let pre_acquire t stack =
  let blocker =
    locked_state (fun () ->
        let tid = Thread.id (Thread.self ()) in
        let held = held_of tid in
        if List.exists (fun h -> h.hm.id = t.id) held then begin
          let r =
            {
              kind = Reentrant_lock;
              lock = t.mx_name;
              held = held_names held;
              cycle = [];
              message =
                Printf.sprintf
                  "thread %d re-acquires %S which it already holds" tid
                  t.mx_name;
              stack_now = stack;
              stack_prior = "";
            }
          in
          add_report r;
          Some r
        end
        else begin
          (* Rank order: strictly increasing along the acquisition
             chain.  Same-class instances are skipped (see sync.mli). *)
          (match t.mx_rank with
          | None -> ()
          | Some r ->
            List.iter
              (fun h ->
                match h.hm.mx_rank with
                | Some hr
                  when hr >= r && not (String.equal h.hm.mx_name t.mx_name)
                       && not
                            (Hashtbl.mem rank_reported (h.hm.mx_name, t.mx_name))
                  ->
                  Hashtbl.add rank_reported (h.hm.mx_name, t.mx_name) ();
                  add_report
                    {
                      kind = Rank_violation;
                      lock = t.mx_name;
                      held = held_names held;
                      cycle = [];
                      message =
                        Printf.sprintf
                          "acquiring %S (rank %d) while holding %S (rank %d): \
                           ranks must strictly increase along the acquisition \
                           chain"
                          t.mx_name r h.hm.mx_name hr;
                      stack_now = stack;
                      stack_prior = h.stack;
                    }
                | _ -> ())
              held);
          (* Order graph: held -> t, cycle check on each new edge. *)
          List.iter
            (fun h ->
              let src = h.hm.mx_name and dst = t.mx_name in
              if not (String.equal src dst) then begin
                let succs =
                  match Hashtbl.find_opt graph src with
                  | Some s -> s
                  | None ->
                    let s = Hashtbl.create 4 in
                    Hashtbl.add graph src s;
                    s
                in
                if not (Hashtbl.mem succs dst) then begin
                  (* Inserting src->dst closes a cycle iff dst already
                     reaches src. *)
                  (match find_path dst src with
                  | Some path ->
                    let prior =
                      match Hashtbl.find_opt graph dst with
                      | Some s -> (
                        match path with
                        | _ :: next :: _ ->
                          Option.value ~default:""
                            (Hashtbl.find_opt s next)
                        | _ -> "")
                      | None -> ""
                    in
                    add_report
                      {
                        kind = Would_deadlock;
                        lock = dst;
                        held = held_names held;
                        (* [path] runs dst..src; appending dst closes
                           the loop starting at the lock being taken. *)
                        cycle = path @ [ dst ];
                        message =
                          Printf.sprintf
                            "acquiring %S while holding %S inverts an \
                             already-observed order: another thread \
                             interleaving here deadlocks"
                            dst src;
                        stack_now = stack;
                        stack_prior = prior;
                      }
                  | None -> ());
                  Hashtbl.add succs dst stack
                end
              end)
            held;
          None
        end)
  in
  match blocker with None -> () | Some r -> raise (Deadlock r)

let post_acquire t stack =
  locked_state (fun () ->
      let tid = Thread.id (Thread.self ()) in
      Hashtbl.replace held_by tid
        ({ hm = t; since = Mtime_stub.now_ns (); stack } :: held_of tid))

(* Remove [t] from the calling thread's held set; no-op when absent
   (locked before the detector was enabled). *)
let note_release t =
  locked_state (fun () ->
      let tid = Thread.id (Thread.self ()) in
      let held = held_of tid in
      match List.partition (fun h -> h.hm.id = t.id) held with
      | [], _ -> ()
      | h :: _, rest ->
        Hashtbl.replace held_by tid rest;
        emit
          (Ev_released
             {
               lock = t.mx_name;
               held_ns =
                 Int64.to_float (Int64.sub (Mtime_stub.now_ns ()) h.since);
             }))

let slow_lock t =
  let stack = capture_stack () in
  pre_acquire t stack;
  let t0 = Mtime_stub.now_ns () in
  let contended = not (Raw_mutex.try_lock t.m) in
  if contended then begin
    emit (Ev_waiting { lock = t.mx_name; delta = 1 });
    Raw_mutex.lock t.m;
    emit (Ev_waiting { lock = t.mx_name; delta = -1 })
  end;
  emit
    (Ev_acquired
       {
         lock = t.mx_name;
         wait_ns = Int64.to_float (Int64.sub (Mtime_stub.now_ns ()) t0);
         contended;
       });
  post_acquire t stack

module Mutex = struct
  type t = mutex

  let create ?rank name =
    { m = Raw_mutex.create (); mx_name = name; mx_rank = rank; id = next_id () }

  let name t = t.mx_name
  let rank t = t.mx_rank
  let lock t = if !on then slow_lock t else Raw_mutex.lock t.m

  let try_lock t =
    if not !on then Raw_mutex.try_lock t.m
    else begin
      let stack = capture_stack () in
      (* Re-entrant try_lock keeps the stdlib contract (returns false,
         no hang possible) — the report is still recorded. *)
      match pre_acquire t stack with
      | exception Lockdep.Deadlock _ -> false
      | () ->
      if Raw_mutex.try_lock t.m then begin
        emit (Ev_acquired { lock = t.mx_name; wait_ns = 0.0; contended = false });
        post_acquire t stack;
        true
      end
      else false
    end

  let unlock t =
    if !on then note_release t;
    Raw_mutex.unlock t.m

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Condition = struct
  type t = Raw_condition.t

  let create () = Raw_condition.create ()

  let wait c (m : Mutex.t) =
    if not !on then Raw_condition.wait c m.m
    else begin
      (* The wait releases the mutex: take it out of the held set so
         the signaller's acquisition is not recorded as nesting under
         the waiter's, and re-add it when the wait returns (fresh hold
         timestamp — the held-time histogram measures hold segments). *)
      note_release m;
      Raw_condition.wait c m.m;
      post_acquire m (capture_stack ())
    end

  let signal = Raw_condition.signal
  let broadcast = Raw_condition.broadcast
end

(* {2 Environment install}

   Linking this unit into any binary makes HYPER_LOCKDEP=1 turn the
   detector on at startup and fail the process at exit if any report
   accumulated — the full test suite and the fuzz legs run under it in
   CI without per-binary wiring. *)

let () =
  match Sys.getenv_opt "HYPER_LOCKDEP" with
  | Some ("1" | "true" | "yes") ->
    Lockdep.enable ();
    at_exit (fun () ->
        match Lockdep.reports () with
        | [] -> ()
        | rs ->
          prerr_endline
            (Printf.sprintf "HYPER_LOCKDEP: %d report(s):" (List.length rs));
          List.iter (fun r -> prerr_string (report_to_string r)) rs;
          exit 70)
  | _ -> ()

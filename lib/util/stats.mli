(** Sample statistics for benchmark timings.

    The HyperModel protocol runs each operation 50 times (cold) and 50
    times (warm) and reports milliseconds per node returned; this module
    accumulates the raw samples and derives the summary numbers. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample.  @raise Invalid_argument on NaN: a NaN sample
    would silently poison every summary number downstream. *)

val count : t -> int
val total : t -> float
val mean : t -> float

val stddev : t -> float
(** Sample standard deviation (n-1 denominator, Welford's online
    update so large offsets don't cancel); 0 for fewer than two
    samples. *)

val min : t -> float
(** @raise Invalid_argument on an empty series (previously returned
    [infinity] straight into reports). *)

val max : t -> float
(** @raise Invalid_argument on an empty series. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in \[0,100\], by linear interpolation over
    the sorted samples.  @raise Invalid_argument on an empty series or a
    [p] outside the range. *)

val median : t -> float

val samples : t -> float array
(** Copy of the raw samples in insertion order. *)

(** Bounded LRU map with O(1) touch, insert and eviction.

    A hash table over an intrusive doubly-linked recency list — the
    classic page-cache index.  Both the simulated server page cache
    ({!Hyper_net.Channel}) and the decoded-object cache of the disk
    backend use it; before it was factored out each kept its own copy
    (and the object cache evicted with an O(n) fold that dominated
    cache-bounded runs).

    Not thread-safe, like the rest of the storage layer. *)

type ('k, 'v) t

val create : ?initial_size:int -> capacity:int -> unit -> ('k, 'v) t
(** [capacity] must be positive: inserting beyond it evicts the
    least-recently-used binding.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : _ t -> int
val length : _ t -> int

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test that does {e not} count as a use. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit moves the binding to most-recently-used. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, making the binding most-recently-used.  Evicts
    the least-recently-used binding when over capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Iteration in unspecified order; does not touch recency. *)

(** Replication wire frames.

    Every frame carries the sender's [epoch] — the fencing token.  A
    node that receives a frame from an older epoch answers [Fence] with
    its own epoch instead of acting on it; a frame from a newer epoch
    makes the receiver adopt that epoch.  Handlers must therefore
    always look at the epoch field before anything else (the
    [epoch-check] hyperlint rule enforces this at the pattern level).

    [Append] payloads are concatenated WAL records in their on-disk
    encoding ({!Hyper_storage.Wal.encode_entry}), so every shipped
    record keeps its own CRC; the frame adds a second, frame-level CRC
    over the whole message.  [base_lsn] is the LSN of the payload's
    first record.

    [Ack { lsn; _ }] means "my received log is contiguous through
    [lsn - 1]; [lsn] is the next record I expect".  [Nak] requests a
    resend from [lsn] (gap, or a torn/garbled payload). *)

type t =
  | Append of { epoch : int; base_lsn : int; payload : bytes }
  | Heartbeat of { epoch : int; commit_lsn : int }
  | Snapshot of {
      epoch : int;
      lsn : int;
      commits : int;
      files : (string * bytes) list;
    }
  | Ack of { epoch : int; lsn : int }
  | Nak of { epoch : int; lsn : int }
  | Fence of { epoch : int }

val epoch_of : t -> int

val ack_lsn : t -> int option
(** [Some lsn] when the frame is an [Ack]. *)

val encode : t -> bytes

val decode : bytes -> t option
(** [None] on bad magic, bad CRC, truncation or an unknown tag — a
    garbled frame is dropped, never half-parsed. *)

val to_string : t -> string

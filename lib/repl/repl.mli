(** WAL-shipping primary/replica replication (ROADMAP item 2).

    The primary taps its engine's write-ahead log with a stream cursor
    ({!Hyper_storage.Wal.set_on_append}) and ships every record, in its
    on-disk encoding, to N replicas over {!Hyper_net.Channel.Link}
    message links.  Each replica appends the records to its own
    received log, syncs it, applies committed transactions' images to
    its pager (continuous redo — the same log-order image resolution
    crash recovery uses), and acknowledges.  The engine's commit hook
    then gates the commit on the cluster's ack {!policy}.

    Failure handling is the point:

    - {b fencing}: every frame carries an epoch; stale-epoch frames are
      answered with [Fence], and a fenced (deposed) primary demotes
      itself to read-only;
    - {b failure detection}: heartbeats with a miss limit mark dead
      replicas, acks revive them;
    - {b catch-up}: a lagging or rejoining replica is fed the retained
      log tail when the gap is small, or a full snapshot copy when the
      tail was evicted or the gap exceeds [snapshot_lag];
    - {b degradation}: a lagging sync replica is demoted to async
      rather than stalling commits; when the ack policy becomes
      unsatisfiable the primary degrades to read-only (the ENOSPC
      pattern: committed data stays readable);
    - {b promotion}: failover picks the live replica with the maximum
      LSN — replica logs are gap-free prefixes of the primary's record
      stream, so the max-LSN survivor contains every acked commit.

    Everything is synchronous and deterministic: frames move only when
    the cluster pumps its links, and all "time" (backoff, ack latency)
    is charged to the virtual clock. *)

type policy = Async | Sync_one | Quorum

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

module Replica : sig
  type t

  val create : ?plan:Hyper_storage.Vfs.Faulty.plan -> name:string -> unit -> t
  (** A replica with its own in-memory faulty VFS (default plan:
      {!Hyper_storage.Vfs.Faulty.quiet}); its store lives at
      [/repl/<name>.db], its received log at [.rlog], its epoch and
      snapshot base at [.replmeta]. *)

  val handle : t -> Frame.t -> Frame.t option
  (** One frame in, at most one frame out.  Epoch is checked first:
      stale frames get [Fence], newer epochs are adopted.  A killed
      replica returns [None] to everything. *)

  val kill : t -> unit
  (** Crash: power-fail the VFS and stop answering. *)

  val restart : t -> unit
  (** Reboot after {!kill}: truncate the received log's torn tail and
      rebuild the data pages by replaying the clean prefix over the
      on-disk base (log-order image resolution, uncommitted tail
      undone). *)

  val finalize : t -> unit
  (** Settle the files to disk and release the handles, so a fresh
      store open (e.g. [Hyper_diskdb]) can take over. *)

  val name : t -> string
  val env : t -> Hyper_storage.Vfs.Faulty.env
  val vfs : t -> Hyper_storage.Vfs.t
  val path : t -> string
  val up : t -> bool
  val epoch : t -> int

  val next_lsn : t -> int
  (** Next record LSN expected — the length of the gap-free prefix the
      replica holds. *)

  val applied_commits : t -> int
  (** Committed transactions applied since the replica joined. *)
end

module Cluster : sig
  type t

  type config = {
    policy : policy;
    heartbeat_miss_limit : int;  (** unanswered heartbeats before dead *)
    ack_retries : int;  (** resend rounds before striking a laggard *)
    demote_after : int;  (** strikes before a sync peer goes async *)
    retain_records : int;  (** log tail kept for replay catch-up *)
    snapshot_lag : int;  (** lag beyond which catch-up snapshots *)
    link_plan : Hyper_net.Channel.Link.plan;
  }

  val default_config : config
  (** Async, reliable links, 3-miss detector, 6 retry rounds, demote
      after 2 strikes, 4096 retained records, snapshot beyond 1024. *)

  type counters = {
    mutable ships : int;
    mutable acks : int;
    mutable naks : int;
    mutable retries : int;
    mutable snapshots : int;
    mutable replays : int;
    mutable demotions : int;
    mutable fences : int;
    mutable heartbeats : int;
  }

  val create :
    ?cfg:config ->
    engine:Hyper_storage.Engine.t ->
    vfs:Hyper_storage.Vfs.t ->
    path:string ->
    replicas:Replica.t list ->
    unit ->
    t
  (** Form a cluster around a running primary: checkpoint it, seed
      every replica with a direct snapshot of the data files, install
      the WAL stream cursor and the commit hook.  From here on every
      commit on [engine] ships before it returns, per the policy; the
      hook raises {!Hyper_storage.Storage_error.Error} [Read_only] when
      the policy cannot be satisfied (the commit is locally durable but
      not replicated to the promised degree). *)

  val detach : t -> unit
  (** Remove the engine hooks (an orderly shutdown — a deposed primary
      that never detaches keeps shipping and gets fenced). *)

  val heartbeat : t -> unit
  (** One failure-detector round: probe every peer, mark the
      unresponsive dead, revive and catch up the lagging. *)

  val pump : t -> unit
  (** Move deliverable frames across every link, both directions. *)

  val kill_replica : t -> int -> unit
  val restart_replica : t -> int -> unit

  val promote : ?idx:int -> t -> int * Replica.t
  (** Fail over: pick the live replica with the maximum LSN (or [idx]),
      bump the epoch, fence the other replicas, finalize the survivor's
      files and return it.  The old primary's hooks stay installed so a
      still-running deposed primary learns of its deposition from the
      next Fence it receives.
      @raise Invalid_argument when no live replica exists. *)

  val policy : t -> policy
  val epoch : t -> int

  val lsn : t -> int
  (** Next record LSN the primary will assign (stream length). *)

  val commits : t -> int
  (** Commits shipped since the cluster was formed. *)

  val degraded : t -> bool
  (** Primary went read-only after the ack policy became unsatisfiable. *)

  val deposed : t -> bool
  (** Primary was fenced by a newer epoch. *)

  val counters : t -> counters
  val replica : t -> int -> Replica.t
  val acked_lsn : t -> int -> int
  val alive : t -> int -> bool
  val synced : t -> int -> bool
  val link_out : t -> int -> Hyper_net.Channel.Link.t
  val link_in : t -> int -> Hyper_net.Channel.Link.t
  val n_replicas : t -> int
  val report : t -> string
end

module Obs = Hyper_obs.Obs
module Vfs = Hyper_storage.Vfs
module Wal = Hyper_storage.Wal
module Pager = Hyper_storage.Pager
module Recovery = Hyper_storage.Recovery
module Engine = Hyper_storage.Engine
module Storage_error = Hyper_storage.Storage_error
module Link = Hyper_net.Channel.Link
module Vclock = Hyper_util.Vclock

let m_ships =
  Obs.Counter.make "hyper_repl_ship_frames_total"
    ~help:"append frames shipped to replicas"

let m_acks =
  Obs.Counter.make "hyper_repl_acks_total" ~help:"replica acks processed"

let m_naks =
  Obs.Counter.make "hyper_repl_naks_total"
    ~help:"replica resend requests processed"

let m_redo =
  Obs.Counter.make "hyper_repl_redo_records_total"
    ~help:"WAL records applied by replica continuous redo"

let m_snapshots =
  Obs.Counter.make "hyper_repl_snapshots_total"
    ~help:"snapshot-copy catch-ups shipped"

let m_replays =
  Obs.Counter.make "hyper_repl_replays_total"
    ~help:"log-replay catch-ups shipped"

let m_fenced =
  Obs.Counter.make "hyper_repl_fenced_total"
    ~help:"frames rejected because they carried a stale epoch"

let m_demotions =
  Obs.Counter.make "hyper_repl_demotions_total"
    ~help:"sync replicas demoted to async for lagging"

let m_failovers =
  Obs.Counter.make "hyper_repl_failovers_total" ~help:"promotions performed"

let g_lag =
  Obs.Gauge.make "hyper_repl_lag_records"
    ~help:"records the slowest live replica trails the primary by"

let h_ack_ns =
  Obs.Histogram.make "hyper_repl_ack_latency_ns"
    ~help:"virtual nanoseconds from commit to ack-policy satisfaction"

type policy = Async | Sync_one | Quorum

let policy_to_string = function
  | Async -> "async"
  | Sync_one -> "sync-one"
  | Quorum -> "quorum"

let policy_of_string = function
  | "async" -> Some Async
  | "sync-one" | "sync_one" | "sync1" -> Some Sync_one
  | "quorum" -> Some Quorum
  | _ -> None

(* ------------------------------------------------------------------ *)

module Replica = struct
  type t = {
    name : string;
    env : Vfs.Faulty.env;
    vfs : Vfs.t;
    path : string;
    mutable up : bool;
    mutable epoch : int;
    mutable base_lsn : int; (* LSN of the first record in the rlog *)
    mutable base_commits : int; (* commits already folded into the base *)
    mutable next_lsn : int; (* next record LSN expected *)
    mutable applied_commits : int;
    mutable pager : Pager.t;
    mutable rlog : Wal.t;
    (* the (single, serial) transaction currently being streamed *)
    mutable cur_txn : int option;
    mutable cur_writes : (int * bytes) list; (* reversed *)
  }

  let rlog_path path = path ^ ".rlog"
  let meta_path path = path ^ ".replmeta"

  let persist_meta t =
    let f = t.vfs.Vfs.open_rw (meta_path t.path) in
    let s =
      Printf.sprintf "%d %d %d" t.epoch t.base_lsn t.base_commits
    in
    f.Vfs.truncate 0;
    f.Vfs.pwrite ~buf:(Bytes.of_string s) ~off:0;
    f.Vfs.sync ();
    f.Vfs.close ()

  let read_meta vfs path =
    if not (vfs.Vfs.exists (meta_path path)) then (0, 0, 0)
    else begin
      let f = vfs.Vfs.open_rw (meta_path path) in
      let len = f.Vfs.size () in
      let b = Bytes.create len in
      if len > 0 then f.Vfs.pread ~buf:b ~off:0;
      f.Vfs.close ();
      match
        String.split_on_char ' ' (String.trim (Bytes.to_string b))
      with
      | [ e; bl; bc ] -> (
        try (int_of_string e, int_of_string bl, int_of_string bc)
        with Failure _ -> (0, 0, 0))
      | _ -> (0, 0, 0)
    end

  let create ?(plan = Vfs.Faulty.quiet) ~name () =
    let env = Vfs.Faulty.create plan in
    let vfs = Vfs.Faulty.vfs env in
    let path = "/repl/" ^ name ^ ".db" in
    { name; env; vfs; path; up = true; epoch = 0; base_lsn = 0;
      base_commits = 0; next_lsn = 0; applied_commits = 0;
      pager = Pager.create ~vfs path;
      rlog = Wal.open_ ~vfs (rlog_path path);
      cur_txn = None; cur_writes = [] }

  let name t = t.name
  let env t = t.env
  let vfs t = t.vfs
  let path t = t.path
  let up t = t.up
  let epoch t = t.epoch
  let next_lsn t = t.next_lsn
  let applied_commits t = t.applied_commits

  let ensure_page t id =
    while Pager.page_count t.pager <= id do
      ignore (Pager.allocate t.pager)
    done

  (* Continuous redo: collect the streamed transaction's after-images
     and apply them when (and only when) its commit record arrives.
     The primary runs one write transaction at a time, so the stream
     never interleaves transactions. *)
  let redo_record t e =
    match e with
    | Wal.Begin id ->
      t.cur_txn <- Some id;
      t.cur_writes <- []
    | Wal.After (id, page, img) ->
      if t.cur_txn = Some id then t.cur_writes <- (page, img) :: t.cur_writes
    | Wal.Commit id ->
      if t.cur_txn = Some id then begin
        List.iter
          (fun (page, img) ->
            ensure_page t page;
            Pager.write t.pager page img)
          (List.rev t.cur_writes);
        Obs.Counter.add m_redo (List.length t.cur_writes);
        t.cur_txn <- None;
        t.cur_writes <- [];
        t.applied_commits <- t.applied_commits + 1
      end
    | Wal.Before _ | Wal.Checkpoint -> ()

  let apply_record t e =
    Wal.append t.rlog e;
    redo_record t e

  let write_file vfs p data =
    if vfs.Vfs.exists p then vfs.Vfs.remove p;
    let f = vfs.Vfs.open_rw p in
    if Bytes.length data > 0 then f.Vfs.pwrite ~buf:data ~off:0;
    f.Vfs.sync ();
    f.Vfs.close ()

  let install_snapshot t ~epoch ~lsn ~commits ~files =
    Pager.close t.pager;
    Wal.close t.rlog;
    t.vfs.Vfs.remove t.path;
    if t.vfs.Vfs.exists (t.path ^ ".sum") then
      t.vfs.Vfs.remove (t.path ^ ".sum");
    t.vfs.Vfs.remove (rlog_path t.path);
    List.iter
      (fun (tag, data) ->
        match tag with
        | "data" -> write_file t.vfs t.path data
        | "sum" -> write_file t.vfs (t.path ^ ".sum") data
        | _ -> ())
      files;
    t.pager <- Pager.create ~vfs:t.vfs t.path;
    t.rlog <- Wal.open_ ~vfs:t.vfs (rlog_path t.path);
    t.epoch <- epoch;
    t.base_lsn <- lsn;
    t.base_commits <- commits;
    t.next_lsn <- lsn;
    t.applied_commits <- commits;
    t.cur_txn <- None;
    t.cur_writes <- [];
    persist_meta t

  let fence t = Frame.Fence { epoch = t.epoch }

  let adopt_epoch t epoch =
    if epoch > t.epoch then begin
      t.epoch <- epoch;
      persist_meta t
    end

  (* The replica's whole protocol: one frame in, at most one frame out.
     Epoch first, always. *)
  let handle t frame =
    if not t.up then None
    else
      match frame with
      | Frame.Append { epoch; base_lsn; payload } ->
        if epoch < t.epoch then begin
          Obs.Counter.incr m_fenced;
          Some (fence t)
        end
        else begin
          adopt_epoch t epoch;
          if base_lsn > t.next_lsn then
            (* gap: something before this payload never arrived *)
            Some (Frame.Nak { epoch = t.epoch; lsn = t.next_lsn })
          else begin
            let entries, torn = Wal.decode_entries payload in
            let skip = t.next_lsn - base_lsn in
            let fresh = List.filteri (fun i _ -> i >= skip) entries in
            List.iter (apply_record t) fresh;
            t.next_lsn <- max t.next_lsn (base_lsn + List.length entries);
            (* Durability before acknowledgement: the received log hits
               the replica's disk before the primary may count us. *)
            Wal.sync t.rlog;
            if torn then Some (Frame.Nak { epoch = t.epoch; lsn = t.next_lsn })
            else Some (Frame.Ack { epoch = t.epoch; lsn = t.next_lsn })
          end
        end
      | Frame.Heartbeat { epoch; commit_lsn = _ } ->
        if epoch < t.epoch then begin
          Obs.Counter.incr m_fenced;
          Some (fence t)
        end
        else begin
          adopt_epoch t epoch;
          Some (Frame.Ack { epoch = t.epoch; lsn = t.next_lsn })
        end
      | Frame.Snapshot { epoch; lsn; commits; files } ->
        if epoch < t.epoch then begin
          Obs.Counter.incr m_fenced;
          Some (fence t)
        end
        else begin
          install_snapshot t ~epoch ~lsn ~commits ~files;
          Some (Frame.Ack { epoch = t.epoch; lsn = t.next_lsn })
        end
      | Frame.Fence { epoch } ->
        adopt_epoch t epoch;
        None
      | Frame.Ack { epoch; lsn = _ } | Frame.Nak { epoch; lsn = _ } ->
        (* not addressed to a replica; at most adopt the newer epoch *)
        adopt_epoch t epoch;
        None

  (* Crash the replica process: power-fail its vfs (unsynced state is
     settled per the fault plan) and stop answering. *)
  let kill t =
    if t.up then begin
      t.up <- false;
      Vfs.Faulty.power_fail t.env
    end

  (* Reboot after [kill]: reread the meta, truncate the rlog's torn
     tail, rebuild the data pages by replaying the whole received log
     over the (possibly stale) on-disk base.  Replay uses the same
     log-order image resolution as crash recovery, so a transaction
     whose commit record is missing from the clean prefix is undone. *)
  let restart t =
    let epoch, base_lsn, base_commits = read_meta t.vfs t.path in
    t.epoch <- epoch;
    t.base_lsn <- base_lsn;
    t.base_commits <- base_commits;
    let scan = Wal.scan ~vfs:t.vfs (rlog_path t.path) in
    t.pager <- Pager.create ~vfs:t.vfs t.path;
    let _redone, _undone =
      Recovery.apply_log scan.Wal.entries ~write:(fun page img ->
          ensure_page t page;
          Pager.write t.pager page img)
    in
    Pager.sync t.pager;
    t.rlog <- Wal.open_ ~vfs:t.vfs (rlog_path t.path);
    t.next_lsn <- base_lsn + List.length scan.Wal.entries;
    t.applied_commits <-
      base_commits
      + List.length
          (List.filter
             (function Wal.Commit _ -> true | _ -> false)
             scan.Wal.entries);
    (* A torn frame can leave the clean log mid-transaction; rebuild the
       in-flight collection state so the resent commit record still
       finds its after-images and applies them. *)
    t.cur_txn <- None;
    t.cur_writes <- [];
    List.iter
      (fun e ->
        match e with
        | Wal.Begin id ->
          t.cur_txn <- Some id;
          t.cur_writes <- []
        | Wal.After (id, page, img) ->
          if t.cur_txn = Some id then t.cur_writes <- (page, img) :: t.cur_writes
        | Wal.Commit id ->
          if t.cur_txn = Some id then begin
            t.cur_txn <- None;
            t.cur_writes <- []
          end
        | Wal.Before _ | Wal.Checkpoint -> ())
      scan.Wal.entries;
    t.up <- true

  (* Make the replica's files a complete, openable store: settle the
     pager and the received log to disk and release the handles.  Run
     before handing the files to a fresh [Diskdb]-style open. *)
  let finalize t =
    Wal.sync t.rlog;
    Pager.sync t.pager;
    Pager.close t.pager;
    Wal.close t.rlog;
    t.up <- false
end

(* ------------------------------------------------------------------ *)

module Cluster = struct
  type config = {
    policy : policy;
    heartbeat_miss_limit : int;
    ack_retries : int;
    demote_after : int;
    retain_records : int;
    snapshot_lag : int;
    link_plan : Link.plan;
  }

  let default_config =
    { policy = Async; heartbeat_miss_limit = 3; ack_retries = 6;
      demote_after = 2; retain_records = 4096; snapshot_lag = 1024;
      link_plan = Link.reliable }

  type peer = {
    replica : Replica.t;
    out : Link.t; (* primary -> replica *)
    inl : Link.t; (* replica -> primary *)
    mutable acked_lsn : int;
    mutable alive : bool;
    mutable hb_missed : int;
    mutable strikes : int;
    mutable synced : bool; (* counted towards sync-one / quorum acks *)
  }

  type counters = {
    mutable ships : int;
    mutable acks : int;
    mutable naks : int;
    mutable retries : int;
    mutable snapshots : int;
    mutable replays : int;
    mutable demotions : int;
    mutable fences : int;
    mutable heartbeats : int;
  }

  type t = {
    cfg : config;
    engine : Engine.t;
    vfs : Vfs.t;
    path : string;
    peers : peer array;
    mutable epoch : int;
    mutable next_lsn : int; (* primary's record stream position *)
    mutable commits : int; (* commits since the cluster was formed *)
    (* retained record tail for log-replay catch-up: newest first *)
    mutable retained : (int * bytes) list;
    mutable retained_len : int;
    mutable retained_base : int; (* lowest LSN still retained *)
    mutable degraded : bool;
    mutable deposed : bool;
    counters : counters;
  }

  let read_file vfs p =
    if not (vfs.Vfs.exists p) then Bytes.empty
    else begin
      let f = vfs.Vfs.open_rw p in
      let len = f.Vfs.size () in
      let b = Bytes.create len in
      if len > 0 then f.Vfs.pread ~buf:b ~off:0;
      f.Vfs.close ();
      b
    end

  let snapshot_files t =
    [ ("data", read_file t.vfs t.path);
      ("sum", read_file t.vfs (t.path ^ ".sum")) ]

  let retain t lsn bytes =
    t.retained <- (lsn, bytes) :: t.retained;
    t.retained_len <- t.retained_len + 1;
    if t.retained_len > t.cfg.retain_records then begin
      (* drop the oldest record; O(n), but n is bounded by the config *)
      let rec drop_last = function
        | [] | [ _ ] -> []
        | x :: rest -> x :: drop_last rest
      in
      t.retained <- drop_last t.retained;
      t.retained_len <- t.retained_len - 1;
      t.retained_base <- lsn + 1 - t.retained_len
    end

  (* Concatenated encoded records in [from_lsn, next_lsn), or None when
     the tail has been evicted and only a snapshot can help. *)
  let backlog t from_lsn =
    if from_lsn < t.retained_base then None
    else begin
      let buf = Buffer.create 256 in
      List.iter
        (fun (lsn, b) -> if lsn >= from_lsn then Buffer.add_bytes buf b)
        (List.rev t.retained);
      Some (Buffer.to_bytes buf)
    end

  let depose t =
    if not t.deposed then begin
      t.deposed <- true;
      t.counters.fences <- t.counters.fences + 1;
      Engine.demote_read_only t.engine
    end

  (* Move every deliverable frame across both directions of every
     link.  Single-threaded and deterministic: the only concurrency in
     the system is the one the link fault plans simulate. *)
  let pump t =
    Array.iter
      (fun peer ->
        let rec deliver () =
          match Link.poll peer.out with
          | Some msg ->
            (match Frame.decode msg with
            | Some f -> (
              match Replica.handle peer.replica f with
              | Some resp -> Link.send peer.inl (Frame.encode resp)
              | None -> ())
            | None -> () (* garbled on the wire: dropped *));
            deliver ()
          | None -> ()
        in
        deliver ();
        let rec collect () =
          match Link.poll peer.inl with
          | Some msg ->
            (match Frame.decode msg with
            | Some (Frame.Ack { epoch; lsn }) ->
              if epoch > t.epoch then depose t
              else if epoch = t.epoch then begin
                if lsn > peer.acked_lsn then peer.acked_lsn <- lsn;
                peer.hb_missed <- 0;
                if not peer.alive then peer.alive <- true;
                t.counters.acks <- t.counters.acks + 1;
                Obs.Counter.incr m_acks
              end
            | Some (Frame.Nak { epoch; lsn }) ->
              if epoch > t.epoch then depose t
              else if epoch = t.epoch then begin
                t.counters.naks <- t.counters.naks + 1;
                Obs.Counter.incr m_naks;
                if lsn < peer.acked_lsn then peer.acked_lsn <- lsn
              end
            | Some (Frame.Fence { epoch }) -> if epoch > t.epoch then depose t
            | Some (Frame.Append { epoch; base_lsn = _; payload = _ })
            | Some (Frame.Heartbeat { epoch; commit_lsn = _ })
            | Some (Frame.Snapshot { epoch; lsn = _; commits = _; files = _ })
              ->
              (* a primary never receives these; a newer epoch on one
                 still fences us *)
              if epoch > t.epoch then depose t
            | None -> ());
            collect ()
          | None -> ()
        in
        collect ())
      t.peers

  let send_to _t peer frame = Link.send peer.out (Frame.encode frame)

  (* Catch a peer up from its acked position: ship the retained log
     tail when it still covers the gap and the gap is modest, else fall
     back to a full snapshot copy (checkpointing first so the data file
     holds everything). *)
  let catch_up t peer =
    let lag = t.next_lsn - peer.acked_lsn in
    if lag <= 0 then ()
    else
      match
        if lag > t.cfg.snapshot_lag then None else backlog t peer.acked_lsn
      with
      | Some payload ->
        t.counters.replays <- t.counters.replays + 1;
        Obs.Counter.incr m_replays;
        Obs.Span.with_span "repl.catchup.replay" (fun () ->
            send_to t peer
              (Frame.Append
                 { epoch = t.epoch; base_lsn = peer.acked_lsn; payload }))
      | None ->
        t.counters.snapshots <- t.counters.snapshots + 1;
        Obs.Counter.incr m_snapshots;
        Obs.Span.with_span "repl.catchup.snapshot" (fun () ->
            if not (Engine.in_txn t.engine) then Engine.checkpoint t.engine;
            send_to t peer
              (Frame.Snapshot
                 { epoch = t.epoch; lsn = t.next_lsn; commits = t.commits;
                   files = snapshot_files t }))

  let update_lag_gauge t =
    let worst = ref 0 in
    Array.iter
      (fun peer ->
        if peer.alive && Replica.up peer.replica then
          worst := max !worst (t.next_lsn - peer.acked_lsn))
      t.peers;
    Obs.Gauge.set g_lag (float_of_int !worst)

  (* Replica acks needed beyond the primary's own vote. *)
  let required_acks t =
    match t.cfg.policy with
    | Async -> 0
    | Sync_one -> 1
    | Quorum -> (Array.length t.peers + 1) / 2

  let satisfied_acks t =
    let n = ref 0 in
    Array.iter
      (fun peer ->
        if peer.synced && peer.acked_lsn >= t.next_lsn then incr n)
      t.peers;
    !n

  let quorum_loss t =
    t.degraded <- true;
    Engine.demote_read_only t.engine;
    raise (Storage_error.Error Storage_error.Read_only)

  (* Ship everything outstanding and enforce the ack policy.  Runs as
     the engine's commit hook, i.e. after the transaction is locally
     durable; raising here tells the committer the cluster could not
     give the durability it asked for. *)
  let ship_commit t _txn_id =
    if t.deposed then raise (Storage_error.Error Storage_error.Read_only);
    if t.degraded then raise (Storage_error.Error Storage_error.Read_only);
    Obs.Span.with_span "repl.ship" (fun () ->
        let _, span =
          Vclock.time (fun () ->
              Array.iter
                (fun peer ->
                  if Replica.up peer.replica && peer.alive then begin
                    t.counters.ships <- t.counters.ships + 1;
                    Obs.Counter.incr m_ships;
                    catch_up t peer
                  end)
                t.peers;
              let needed = required_acks t in
              let attempt = ref 0 in
              let finished = ref (needed = 0) in
              let exhausted = ref false in
              pump t;
              if t.deposed then
                raise (Storage_error.Error Storage_error.Read_only);
              while not !finished do
                if satisfied_acks t >= needed then finished := true
                else if !attempt >= t.cfg.ack_retries then begin
                  finished := true;
                  exhausted := true
                end
                else begin
                  t.counters.retries <- t.counters.retries + 1;
                  (* exponential backoff on the virtual clock *)
                  Vclock.advance_ns (1_000_000. *. (2. ** float_of_int !attempt));
                  Array.iter
                    (fun peer ->
                      if
                        Replica.up peer.replica && peer.alive && peer.synced
                        && peer.acked_lsn < t.next_lsn
                      then catch_up t peer)
                    t.peers;
                  incr attempt;
                  pump t;
                  if t.deposed then
                    raise (Storage_error.Error Storage_error.Read_only)
                end
              done;
              (* Degradation ladder.  A synced peer that stayed behind
                 while the commit waited takes a strike; chronic
                 laggards are demoted to async rather than stalling
                 every future commit (they stop counting towards
                 satisfaction and heartbeat catch-up keeps them warm).
                 Acking on time clears the record.  When even after
                 demotions the policy itself went unsatisfied, the
                 primary degrades to read-only. *)
              if needed > 0 then
                Array.iter
                  (fun peer ->
                    if peer.synced then
                      if peer.acked_lsn >= t.next_lsn then peer.strikes <- 0
                      else begin
                        peer.strikes <- peer.strikes + 1;
                        if peer.strikes >= t.cfg.demote_after then begin
                          peer.synced <- false;
                          t.counters.demotions <- t.counters.demotions + 1;
                          Obs.Counter.incr m_demotions
                        end
                      end)
                  t.peers;
              if !exhausted && satisfied_acks t < needed then quorum_loss t)
        in
        Obs.Histogram.observe h_ack_ns (Vclock.total_ns span);
        update_lag_gauge t)

  let create ?(cfg = default_config) ~engine ~vfs ~path ~replicas () =
    (* Settle the primary so the seed snapshot is just a file copy. *)
    if not (Engine.in_txn engine) then Engine.checkpoint engine;
    let t =
      { cfg; engine; vfs; path;
        peers =
          Array.of_list
            (List.map
               (fun replica ->
                 { replica;
                   out = Link.create ~plan:cfg.link_plan ();
                   inl = Link.create ~plan:cfg.link_plan ();
                   acked_lsn = 0; alive = true; hb_missed = 0; strikes = 0;
                   synced = true })
               replicas);
        epoch = 1; next_lsn = 0; commits = 0; retained = [];
        retained_len = 0; retained_base = 0; degraded = false;
        deposed = false;
        counters =
          { ships = 0; acks = 0; naks = 0; retries = 0; snapshots = 0;
            replays = 0; demotions = 0; fences = 0; heartbeats = 0 } }
    in
    let files = snapshot_files t in
    Array.iter
      (fun peer ->
        match
          Replica.handle peer.replica
            (Frame.Snapshot
               { epoch = t.epoch; lsn = 0; commits = 0; files })
        with
        | Some resp -> (
          match Frame.ack_lsn resp with
          | Some lsn -> peer.acked_lsn <- lsn
          | None -> ())
        | None -> ())
      t.peers;
    let wal = Engine.wal engine in
    Wal.set_on_append wal
      (Some
         (fun _wal_lsn entry ->
           (* The cluster keeps its own LSN space: it survives WAL
              reopens and starts at the moment the cluster formed. *)
           let lsn = t.next_lsn in
           t.next_lsn <- lsn + 1;
           (match entry with
           | Wal.Commit _ -> t.commits <- t.commits + 1
           | Wal.Begin _ | Wal.Before _ | Wal.After _ | Wal.Checkpoint -> ());
           retain t lsn (Wal.encode_entry entry)));
    Engine.set_commit_hook engine (Some (ship_commit t));
    t

  (* Detach from the engine without fencing anything — the hooks are
     what make a deposed primary keep talking (and get fenced), so
     tests that need that behaviour simply don't call this. *)
  let detach t =
    Wal.set_on_append (Engine.wal t.engine) None;
    Engine.set_commit_hook t.engine None

  let heartbeat t =
    t.counters.heartbeats <- t.counters.heartbeats + 1;
    Array.iter
      (fun peer ->
        if Replica.up peer.replica || peer.alive then
          send_to t peer
            (Frame.Heartbeat { epoch = t.epoch; commit_lsn = t.next_lsn }))
      t.peers;
    (* Give delayed frames a few polls to surface before judging. *)
    pump t;
    pump t;
    pump t;
    Array.iter
      (fun peer ->
        if peer.acked_lsn >= t.next_lsn then peer.hb_missed <- 0
        else begin
          peer.hb_missed <- peer.hb_missed + 1;
          if peer.hb_missed >= t.cfg.heartbeat_miss_limit then
            peer.alive <- false
        end;
        if peer.alive && peer.acked_lsn < t.next_lsn then catch_up t peer)
      t.peers;
    pump t;
    update_lag_gauge t

  let kill_replica t i =
    let peer = t.peers.(i) in
    Replica.kill peer.replica;
    peer.alive <- false

  let restart_replica t i =
    let peer = t.peers.(i) in
    Replica.restart peer.replica;
    peer.alive <- true;
    peer.hb_missed <- 0;
    peer.strikes <- 0;
    (* Its clean rlog prefix tells us what it really has. *)
    peer.acked_lsn <- min t.next_lsn (Replica.next_lsn peer.replica);
    catch_up t peer;
    pump t

  (* Failover: pick the most-caught-up live replica (max next_lsn —
     replica logs are gap-free prefixes of the primary's stream, so
     max-LSN dominates every acked commit), bump the epoch, fence the
     others, and finalize the survivor's files for a fresh open.  The
     old primary's hooks stay installed: if it is still alive it will
     learn about its deposition the hard way, from a Fence. *)
  let promote ?idx t =
    Obs.Counter.incr m_failovers;
    Obs.Span.with_span "repl.failover" (fun () ->
        let candidates =
          Array.to_list
            (Array.mapi (fun i peer -> (i, peer)) t.peers)
          |> List.filter (fun (_, peer) -> Replica.up peer.replica)
        in
        let chosen =
          match idx with
          | Some i -> Some (i, t.peers.(i))
          | None ->
            List.fold_left
              (fun best (i, peer) ->
                match best with
                | None -> Some (i, peer)
                | Some (_, b)
                  when Replica.next_lsn peer.replica > Replica.next_lsn b.replica
                  -> Some (i, peer)
                | Some _ -> best)
              None candidates
        in
        match chosen with
        | None -> invalid_arg "Cluster.promote: no live replica"
        | Some (i, peer) ->
          let new_epoch = t.epoch + 1 in
          Array.iteri
            (fun j other ->
              if j <> i && Replica.up other.replica then
                ignore
                  (Replica.handle other.replica
                     (Frame.Fence { epoch = new_epoch })))
            t.peers;
          ignore
            (Replica.handle peer.replica (Frame.Fence { epoch = new_epoch }));
          Replica.finalize peer.replica;
          (i, peer.replica))

  let policy t = t.cfg.policy
  let epoch t = t.epoch
  let lsn t = t.next_lsn
  let commits t = t.commits
  let degraded t = t.degraded
  let deposed t = t.deposed
  let counters t = t.counters
  let replica t i = t.peers.(i).replica
  let acked_lsn t i = t.peers.(i).acked_lsn
  let alive t i = t.peers.(i).alive
  let synced t i = t.peers.(i).synced
  let link_out t i = t.peers.(i).out
  let link_in t i = t.peers.(i).inl
  let n_replicas t = Array.length t.peers

  let report t =
    let c = t.counters in
    Printf.sprintf
      "policy=%s epoch=%d lsn=%d commits=%d ships=%d acks=%d naks=%d \
       retries=%d snapshots=%d replays=%d demotions=%d fences=%d \
       degraded=%b"
      (policy_to_string t.cfg.policy)
      t.epoch t.next_lsn t.commits c.ships c.acks c.naks c.retries
      c.snapshots c.replays c.demotions c.fences t.degraded
end

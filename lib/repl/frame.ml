type t =
  | Append of { epoch : int; base_lsn : int; payload : bytes }
  | Heartbeat of { epoch : int; commit_lsn : int }
  | Snapshot of {
      epoch : int;
      lsn : int;
      commits : int;
      files : (string * bytes) list;
    }
  | Ack of { epoch : int; lsn : int }
  | Nak of { epoch : int; lsn : int }
  | Fence of { epoch : int }

let frame_magic = 0xB3

(* Same cheap rolling checksum family as the WAL's record CRC — frames
   only need to catch truncation and bit rot injected by the link. *)
let checksum b =
  let h = ref 5381 in
  Bytes.iter (fun c -> h := (((!h lsl 5) + !h) + Char.code c) land 0x3FFFFFFF) b;
  !h

let tag_of = function
  | Append _ -> 1
  | Heartbeat _ -> 2
  | Snapshot _ -> 3
  | Ack _ -> 4
  | Nak _ -> 5
  | Fence _ -> 6

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_bytes_u32 buf b =
  add_u32 buf (Bytes.length b);
  Buffer.add_bytes buf b

let epoch_of = function
  | Append { epoch; _ }
  | Heartbeat { epoch; _ }
  | Snapshot { epoch; _ }
  | Ack { epoch; _ }
  | Nak { epoch; _ }
  | Fence { epoch } -> epoch

let encode t =
  let buf = Buffer.create 64 in
  Buffer.add_uint8 buf frame_magic;
  Buffer.add_uint8 buf (tag_of t);
  add_u32 buf (epoch_of t);
  (match t with
  | Append { epoch = _epoch; base_lsn; payload } ->
    add_u32 buf base_lsn;
    add_bytes_u32 buf payload
  | Heartbeat { epoch = _epoch; commit_lsn } -> add_u32 buf commit_lsn
  | Snapshot { epoch = _epoch; lsn; commits; files } ->
    add_u32 buf lsn;
    add_u32 buf commits;
    add_u32 buf (List.length files);
    List.iter
      (fun (name, data) ->
        add_bytes_u32 buf (Bytes.of_string name);
        add_bytes_u32 buf data)
      files
  | Ack { epoch = _epoch; lsn } -> add_u32 buf lsn
  | Nak { epoch = _epoch; lsn } -> add_u32 buf lsn
  | Fence { epoch = _epoch } -> ());
  let body = Buffer.to_bytes buf in
  let out = Bytes.create (Bytes.length body + 4) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  Bytes.set_int32_le out (Bytes.length body) (Int32.of_int (checksum body));
  out

exception Bad

let decode b =
  let len = Bytes.length b in
  if len < 10 then None
  else begin
    let body_len = len - 4 in
    let crc = Int32.to_int (Bytes.get_int32_le b body_len) land 0x3FFFFFFF in
    if crc <> checksum (Bytes.sub b 0 body_len) then None
    else begin
      let pos = ref 2 in
      let u32 () =
        if !pos + 4 > body_len then raise Bad;
        let v = Int32.to_int (Bytes.get_int32_le b !pos) land 0xFFFFFFFF in
        pos := !pos + 4;
        v
      in
      let bytes_u32 () =
        let n = u32 () in
        if !pos + n > body_len then raise Bad;
        let v = Bytes.sub b !pos n in
        pos := !pos + n;
        v
      in
      try
        if Bytes.get_uint8 b 0 <> frame_magic then None
        else begin
          let tag = Bytes.get_uint8 b 1 in
          let epoch = u32 () in
          match tag with
          | 1 ->
            let base_lsn = u32 () in
            let payload = bytes_u32 () in
            Some (Append { epoch; base_lsn; payload })
          | 2 -> Some (Heartbeat { epoch; commit_lsn = u32 () })
          | 3 ->
            let lsn = u32 () in
            let commits = u32 () in
            let n = u32 () in
            let files = ref [] in
            for _ = 1 to n do
              let name = Bytes.to_string (bytes_u32 ()) in
              let data = bytes_u32 () in
              files := (name, data) :: !files
            done;
            Some (Snapshot { epoch; lsn; commits; files = List.rev !files })
          | 4 -> Some (Ack { epoch; lsn = u32 () })
          | 5 -> Some (Nak { epoch; lsn = u32 () })
          | 6 -> Some (Fence { epoch })
          | _ -> None
        end
      with Bad -> None
    end
  end

(* Handlers that only care whether a response was a positive ack (e.g.
   direct snapshot seeding) — enumerated, not wildcarded, so the epoch
   discipline stays visible. *)
let ack_lsn = function
  | Ack { epoch = _epoch; lsn } -> Some lsn
  | Append { epoch = _epoch; base_lsn = _; payload = _ }
  | Heartbeat { epoch = _epoch; commit_lsn = _ }
  | Snapshot { epoch = _epoch; lsn = _; commits = _; files = _ }
  | Nak { epoch = _epoch; lsn = _ }
  | Fence { epoch = _epoch } -> None

let to_string = function
  | Append { epoch; base_lsn; payload } ->
    Printf.sprintf "append(e%d, base %d, %d bytes)" epoch base_lsn
      (Bytes.length payload)
  | Heartbeat { epoch; commit_lsn } ->
    Printf.sprintf "heartbeat(e%d, lsn %d)" epoch commit_lsn
  | Snapshot { epoch; lsn; commits; files } ->
    Printf.sprintf "snapshot(e%d, lsn %d, %d commits, %d files)" epoch lsn
      commits (List.length files)
  | Ack { epoch; lsn } -> Printf.sprintf "ack(e%d, lsn %d)" epoch lsn
  | Nak { epoch; lsn } -> Printf.sprintf "nak(e%d, lsn %d)" epoch lsn
  | Fence { epoch } -> Printf.sprintf "fence(e%d)" epoch

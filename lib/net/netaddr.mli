(** Server endpoint addresses: unix-domain sockets (the default for
    benchmarking — no TCP stack noise in the latency numbers) or
    TCP/IPv4. *)

type t = Unix_sock of string | Tcp of string * int

val to_string : t -> string

val of_string : string -> t
(** ["unix:/path"] or a bare [/path] → {!Unix_sock}; ["host:port"] →
    {!Tcp} (empty host means loopback).
    @raise Invalid_argument on anything else. *)

val domain : t -> Unix.socket_domain
val to_sockaddr : t -> Unix.sockaddr

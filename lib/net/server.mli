(** The concurrent socket server: a {!Netaddr} accept loop serving
    {!Wire} op batches against one {!Hyper_core.Backend.instance}.

    {2 Scheduling and the engine lease}

    One thread per connection, plus an accept thread.  Every blocking
    point is a [select] with a short timeout, so stop/drain flags are
    honoured promptly.  The engine itself is single-writer: a batch
    executes under a global engine mutex (the same db-mutex discipline
    as {!Hyper_core.Multiuser}).  If a batch leaves a transaction open
    ([Begin] without a closing [Commit]/[Abort]), the session {e keeps
    holding} the mutex across batches — an engine lease — until the
    transaction closes, so per-session transactions are serialisable by
    construction and never interleave.

    {2 Snapshot sessions (MVCC reads)}

    A [Snapshot] request pins a detached read-only view of the committed
    state ({!Hyper_core.Backend.S.snapshot} — the lease is held only for
    the clone itself).  While the view is active, the session's batches
    execute against it {e without taking the lease}: pipelined snapshot
    reads proceed while another session's open transaction holds it —
    readers never block writers.  Mutations and [Begin]/[Commit]/[Abort]
    in a snapshot batch return [Raised "Snapshot_read_only"]; backends
    that cannot clone (disk, relational, remote) answer the [Snapshot]
    request itself with an [F_bad_op] fault.

    {2 Session lifecycle}

    A client disconnect (EOF, reset) while a transaction is open rolls
    it back and releases the lease.  [drain] stops accepting, lets each
    session finish the requests it has already received, replies, then
    closes; sessions still inside a transaction after the grace period
    are aborted.  [kill] is abrupt — sockets close with no replies and
    the engine is not touched — and exists for the crash fuzzer.

    If applying an op raises an exception for which [reraise] returns
    [true] (the fault-injecting VFS's crash), the server records it and
    kills itself without acking the in-flight batch: exactly the
    acked-prefix discipline the net fuzzer checks. *)

type t

val start :
  ?name:string ->
  ?reraise:(exn -> bool) ->
  ?max_frame:int ->
  layout:Hyper_core.Layout.t ->
  Hyper_core.Backend.instance ->
  Netaddr.t ->
  t
(** Bind, listen and spawn the accept loop.  A pre-existing unix-socket
    path is unlinked first.  @raise Unix.Unix_error if binding fails. *)

val addr : t -> Netaddr.t

val session_count : t -> int
(** Live sessions (for tests and the load harness). *)

val drain : ?grace_s:float -> t -> unit
(** Graceful shutdown: stop accepting, finish in-flight requests,
    reply, close.  Blocks until every session thread has exited;
    sessions still in a transaction after [grace_s] (default 5s) are
    aborted and closed. *)

val kill : t -> unit
(** Abrupt shutdown: close every socket now, send nothing, leave the
    engine alone.  Blocks until the threads have exited. *)

val crashed : t -> exn option
(** The reraised exception that killed the server, if any. *)

(** Simulated workstation/server page channel.

    Attaching a channel to a {!Hyper_storage.Pager} turns it into a
    "remote" store: every physical page read becomes a round trip over
    the [network] model.  The server keeps its own page cache of
    [server_cache_pages]; a server-cache miss additionally pays the
    [server_disk] model.  Page writes pay the network cost (shipping the
    page) — the server's disk write happens asynchronously and is not
    charged, matching the group-commit behaviour of the paper-era
    servers.

    This is the mechanism behind the cold/warm distinction in a
    workstation/server architecture (paper §6): a cold run fetches nodes
    from the server; the warm run hits the workstation's buffer pool and
    never touches the channel.

    Group fetch: a batched read ({!Hyper_storage.Pager.read_many}, driven
    by {!Hyper_storage.Buffer_pool.prefetch}) costs {e one} round trip —
    one per-request network overhead plus the per-byte cost of all pages
    shipped — while the server still pays one disk read per page its
    cache misses.  This models the page-at-a-time vs. group-transfer
    distinction of the 1988 client/server OODB designs (Vbase shipping
    single pages vs. GemStone-style bulk check-out). *)

type t

(** A complete workstation/server configuration: how slow the wire is,
    how slow the server's disk is, and how much the server caches. *)
type profile = {
  network : Latency_model.t;
  server_disk : Latency_model.t;
  server_cache_pages : int;
}

val profile_1988 : profile
(** 10 Mbit/s LAN, late-80s server disk, 1024-page server cache — the
    environment the paper's measurements assumed. *)

val profile_test : profile
(** Zero-latency wire and server disk with a deliberately tiny (64-page)
    server cache: exercises every remote code path — round trips, group
    fetches, server-cache eviction — while costing nothing on the
    virtual clock.  Meant for correctness harnesses (the differential
    fuzzer runs a channel-remote subject with it), not measurements. *)

type counters = {
  mutable round_trips : int;
      (** request/response exchanges — a batched fetch counts once *)
  mutable batched_round_trips : int;
      (** the subset of [round_trips] that were group fetches *)
  mutable bytes_sent : int;
  mutable server_hits : int;
  mutable server_misses : int;
}

val attach :
  network:Latency_model.t ->
  ?server_disk:Latency_model.t ->
  ?server_cache_pages:int ->
  Hyper_storage.Pager.t ->
  t
(** Install hooks on the pager.  Default server cache: 1024 pages;
    default server disk: {!Latency_model.disk_1988}. *)

val attach_profile : profile -> Hyper_storage.Pager.t -> t

val detach : t -> unit
(** Remove the hooks; the pager becomes local again. *)

val counters : t -> counters
val reset_counters : t -> unit

val warm_server : t -> unit
(** Preload the server cache notionally (marks everything resident), for
    experiments that isolate network cost from server disk cost. *)

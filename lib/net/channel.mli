(** Simulated workstation/server page channel.

    Attaching a channel to a {!Hyper_storage.Pager} turns it into a
    "remote" store: every physical page read becomes a round trip over
    the [network] model.  The server keeps its own page cache of
    [server_cache_pages]; a server-cache miss additionally pays the
    [server_disk] model.  Page writes pay the network cost (shipping the
    page) — the server's disk write happens asynchronously and is not
    charged, matching the group-commit behaviour of the paper-era
    servers.

    This is the mechanism behind the cold/warm distinction in a
    workstation/server architecture (paper §6): a cold run fetches nodes
    from the server; the warm run hits the workstation's buffer pool and
    never touches the channel.

    Group fetch: a batched read ({!Hyper_storage.Pager.read_many}, driven
    by {!Hyper_storage.Buffer_pool.prefetch}) costs {e one} round trip —
    one per-request network overhead plus the per-byte cost of all pages
    shipped — while the server still pays one disk read per page its
    cache misses.  This models the page-at-a-time vs. group-transfer
    distinction of the 1988 client/server OODB designs (Vbase shipping
    single pages vs. GemStone-style bulk check-out). *)

type t

(** A complete workstation/server configuration: how slow the wire is,
    how slow the server's disk is, and how much the server caches. *)
type profile = {
  network : Latency_model.t;
  server_disk : Latency_model.t;
  server_cache_pages : int;
}

val profile_1988 : profile
(** 10 Mbit/s LAN, late-80s server disk, 1024-page server cache — the
    environment the paper's measurements assumed. *)

val profile_test : profile
(** Zero-latency wire and server disk with a deliberately tiny (64-page)
    server cache: exercises every remote code path — round trips, group
    fetches, server-cache eviction — while costing nothing on the
    virtual clock.  Meant for correctness harnesses (the differential
    fuzzer runs a channel-remote subject with it), not measurements. *)

type counters = {
  mutable round_trips : int;
      (** request/response exchanges — a batched fetch counts once *)
  mutable batched_round_trips : int;
      (** the subset of [round_trips] that were group fetches *)
  mutable bytes_sent : int;
  mutable server_hits : int;
  mutable server_misses : int;
}

val attach :
  network:Latency_model.t ->
  ?server_disk:Latency_model.t ->
  ?server_cache_pages:int ->
  Hyper_storage.Pager.t ->
  t
(** Install hooks on the pager.  Default server cache: 1024 pages;
    default server disk: {!Latency_model.disk_1988}. *)

val attach_profile : profile -> Hyper_storage.Pager.t -> t

val detach : t -> unit
(** Remove the hooks; the pager becomes local again. *)

val counters : t -> counters
val reset_counters : t -> unit

val warm_server : t -> unit
(** Preload the server cache notionally (marks everything resident), for
    experiments that isolate network cost from server disk cost. *)

(** Point-to-point message link with seeded fault injection — the
    network-layer mirror of [Vfs.Faulty].  A link is a unidirectional
    queue of byte messages; faults are decided deterministically at
    {!Link.send} time from the plan's PRNG, so a (plan, send sequence)
    pair always yields the same delivery schedule.  Usable by anything
    that pushes messages point-to-point; replication drives its WAL
    shipping over a pair of these per replica. *)
module Link : sig
  type plan = {
    seed : int64;
    drop_1_in : int;  (** 0 disables; [n] means 1-in-[n] sends vanish *)
    dup_1_in : int;  (** 1-in-[n] sends are delivered twice *)
    reorder_1_in : int;  (** 1-in-[n] sends jump the queue head *)
    delay_1_in : int;  (** 1-in-[n] sends are parked for some polls *)
    delay_polls : int;  (** polls a delayed message sits out *)
  }

  val reliable : plan
  (** No faults: in-order, exactly-once. *)

  val faulty : seed:int64 -> plan
  (** An aggressive default mix (roughly one fault per ten sends of each
      kind) for fuzzing. *)

  type stats = {
    mutable sent : int;
    mutable delivered : int;
    mutable dropped : int;
    mutable duplicated : int;
    mutable reordered : int;
    mutable delayed : int;
  }

  type t

  val create : ?plan:plan -> unit -> t
  (** Default plan: {!reliable}. *)

  val set_plan : t -> plan -> unit
  (** Replace the plan and reseed the PRNG. *)

  val set_down : t -> bool -> unit
  (** A down link drops every send and delivers nothing — a partition,
      as opposed to the probabilistic faults of the plan. *)

  val down : t -> bool

  val send : t -> bytes -> unit
  (** Queue a message (the link keeps its own copy).  Faults are applied
      here. *)

  val poll : t -> bytes option
  (** Next deliverable message, if any.  Each poll also ages parked
      (delayed) messages by one step. *)

  val pending : t -> int
  (** Messages queued or parked, i.e. sent but not yet delivered. *)

  val stats : t -> stats
end

type t = Unix_sock of string | Tcp of string * int

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let of_string s =
  match String.index_opt s ':' with
  | Some 4 when String.length s > 5 && String.sub s 0 4 = "unix" ->
    Unix_sock (String.sub s 5 (String.length s - 5))
  | Some _ ->
    let i = String.rindex s ':' in
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      Tcp ((if host = "" then "127.0.0.1" else host), p)
    | _ -> invalid_arg (Printf.sprintf "Netaddr.of_string: bad port in %S" s))
  | None ->
    (* A bare path serves a unix socket; anything else is a mistake. *)
    if String.length s > 0 && (s.[0] = '/' || s.[0] = '.') then Unix_sock s
    else invalid_arg (Printf.sprintf "Netaddr.of_string: %S" s)

let domain = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let to_sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } ->
          invalid_arg ("Netaddr: cannot resolve " ^ host)
        | { Unix.h_addr_list; _ } -> h_addr_list.(0)
        | exception Not_found -> invalid_arg ("Netaddr: cannot resolve " ^ host))
    in
    Unix.ADDR_INET (addr, port)

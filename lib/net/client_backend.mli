(** A {!Hyper_core.Backend.S} whose engine lives on the other side of a
    socket: every call becomes a one-op {!Wire} batch (node creation
    with a drawn form is the one two-op batch), so the unchanged
    {!Hyper_core.Protocol} driver — and anything else written against
    the backend signature — runs over a real connection.

    Remote exception mapping: the wire carries exception {e classes}
    only, so [Raised "Invalid_argument"] re-raises [Invalid_argument],
    ["Not_found"] re-raises [Not_found], and anything else becomes
    [Failure].  This preserves the classes the backend contract
    specifies; exotic exception constructors flatten to [Failure].

    [prefetch_nodes] is a deliberate no-op: the hint would cost a
    round-trip, the opposite of its purpose.  [io_description] reports
    wire counters (requests and ops sent since [reset_io]), not the
    remote engine's page counters. *)

type t

val make : Client.t -> t
val conn : t -> Client.t
val instance : t -> Hyper_core.Backend.instance

include Hyper_core.Backend.S with type t := t

(** Socket client: one pipelined connection (plus a round-robin
    {!Pool}) speaking {!Wire} to a {!Server}.

    Requests are pipelined: {!submit} writes an [Ops] frame and returns
    immediately with its request id; {!await} reads replies — which the
    server guarantees arrive in request order — until that id's
    [Results] lands.  {!call} is submit-then-await.

    On a connection failure the client reconnects with exponential
    backoff and retries the failed batch {e once} — but only when no
    transaction is open: a mid-transaction failure lost server-side
    state that a blind retry would silently corrupt, so it surfaces as
    {!Connection_lost} instead.  *)

exception Connection_lost of string
(** The transport died (EOF, reset, decode error) and reconnecting was
    not possible or not safe. *)

exception Server_fault of Wire.fault_code * string
(** The server replied [Fault] to one of our requests. *)

type t

val connect :
  ?client_name:string ->
  ?max_frame:int ->
  ?backoff_base_s:float ->
  ?backoff_max_s:float ->
  ?max_attempts:int ->
  Netaddr.t ->
  t
(** Connect and complete the [Hello]/[Welcome] handshake, retrying with
    exponential backoff ([backoff_base_s] doubling up to [backoff_max_s],
    at most [max_attempts] attempts — defaults 0.05s/2s/8).
    @raise Connection_lost when every attempt fails. *)

val session : t -> int
(** Server-assigned session id of the {e current} connection (changes
    after a reconnect). *)

val generation : t -> int
(** Number of successful handshakes so far: 1 after {!connect},
    incremented by each reconnect. *)

val submit : t -> Hyper_core.Trace.op list -> int
(** Pipeline one batch; returns its request id without waiting. *)

val await : t -> int -> Hyper_core.Trace.outcome list
(** Block until the reply for [rid] arrives.  Replies for earlier
    pipelined requests are buffered for their own [await].
    @raise Invalid_argument if [rid] was never submitted or was already
    awaited. *)

val call : t -> Hyper_core.Trace.op list -> Hyper_core.Trace.outcome list
(** [submit] + [await], with the reconnect-and-retry-once policy. *)

val in_txn : t -> bool
(** Whether the submitted batches have left a transaction open
    (tracked client-side from [Begin]/[Commit]/[Abort] in the op
    stream). *)

val snapshot : t -> active:bool -> unit
(** Toggle snapshot mode on the session.  With [active:true] the server
    pins a consistent read-only view of the committed state; subsequent
    batches on this connection read the view without taking the engine
    lease (they proceed while a writer session holds it), and any
    mutation or transaction-control op in them returns
    [Raised "Snapshot_read_only"].  With [active:false] the view is
    dropped and the session reads live state again.
    @raise Server_fault with [F_bad_op] when the served backend cannot
    produce a detached view or the session is inside a transaction. *)

val ping : t -> unit
val close : t -> unit
(** Sends [Bye] (best-effort) and closes the socket.  Idempotent. *)

module Pool : sig
  (** A fixed-size set of connections handed out round-robin.  Each
      connection is used by one caller at a time. *)

  type conn = t
  type t

  val create :
    ?client_name:string ->
    ?backoff_base_s:float ->
    ?backoff_max_s:float ->
    ?max_attempts:int ->
    size:int ->
    Netaddr.t ->
    t

  val with_conn : t -> (conn -> 'a) -> 'a
  val close : t -> unit
end

open Hyper_core
module Bitmap = Hyper_util.Bitmap

type t = {
  c : Client.t;
  mutable requests : int;
  mutable remote_ops : int;
}

let make c = { c; requests = 0; remote_ops = 0 }
let conn t = t.c

let name = "remote"

let description =
  "socket client: every backend call is a wire round-trip to a server"

let reraise = function
  | "Invalid_argument" -> invalid_arg "remote: server raised Invalid_argument"
  | "Not_found" -> raise Not_found
  | cls -> failwith ("remote: server raised " ^ cls)

let batch t ops =
  t.requests <- t.requests + 1;
  t.remote_ops <- t.remote_ops + List.length ops;
  let outcomes = Client.call t.c ops in
  List.iter
    (function Trace.Raised cls -> reraise cls | Trace.Done _ -> ())
    outcomes;
  outcomes

let value t op =
  match batch t [ op ] with
  | [ Trace.Done v ] -> v
  | _ -> failwith "remote: expected exactly one outcome"

let unit_ t op =
  match value t op with
  | Trace.V_unit -> ()
  | _ -> failwith "remote: expected unit outcome"

let int_ t op =
  match value t op with
  | Trace.V_int n -> n
  | _ -> failwith "remote: expected int outcome"

let int_opt t op =
  match value t op with
  | Trace.V_int_opt v -> v
  | _ -> failwith "remote: expected optional-int outcome"

let oids t op =
  match value t op with
  | Trace.V_oids l -> l
  | _ -> failwith "remote: expected oid-list outcome"

let links t op =
  match value t op with
  | Trace.V_links l ->
    Array.of_list
      (List.map
         (fun (target, offset_from, offset_to) ->
           { Schema.target; offset_from; offset_to })
         l)
  | _ -> failwith "remote: expected link-list outcome"

(* {2 Transactions and cache control} *)

let begin_txn t = unit_ t Trace.Begin
let commit t = unit_ t Trace.Commit
let abort t = unit_ t Trace.Abort
let clear_caches t = unit_ t Trace.Clear_caches

(* {2 Creation and structure} *)

let create_node ?near t (spec : Schema.node_spec) =
  let payload, form_fix =
    match spec.payload with
    | Schema.P_internal -> (Trace.P_internal, None)
    | Schema.P_text s -> (Trace.P_text s, None)
    | Schema.P_draw -> (Trace.P_draw, None)
    | Schema.P_form f ->
      let w = Bitmap.width f and h = Bitmap.height f in
      (* The reified create always makes a white form; a drawn bitmap
         rides along as a second op in the same batch. *)
      ( Trace.P_form (w, h),
        if Bitmap.count_set f = 0 then None
        else
          Some
            (Trace.Form_set
               {
                 oid = spec.oid;
                 width = w;
                 height = h;
                 data = Bytes.to_string (Bitmap.to_bytes f);
               }) )
  in
  let create =
    Trace.Create
      {
        oid = spec.oid;
        doc = spec.doc;
        uid = spec.unique_id;
        ten = spec.ten;
        hundred = spec.hundred;
        million = spec.million;
        near;
        payload;
      }
  in
  ignore (batch t (create :: Option.to_list form_fix))

let add_child t ~parent ~child = unit_ t (Trace.Add_child { parent; child })

let add_children t ~parent children =
  unit_ t (Trace.Add_children { parent; children = Array.to_list children })

let add_part t ~whole ~part = unit_ t (Trace.Add_part { whole; part })

let add_parts t ~whole parts =
  unit_ t (Trace.Add_parts { whole; parts = Array.to_list parts })

let add_ref t ~src ~dst ~offset_from ~offset_to =
  unit_ t (Trace.Add_ref { src; dst; offset_from; offset_to })

let remove_child t ~parent ~child =
  unit_ t (Trace.Remove_child { parent; child })

let remove_part t ~whole ~part = unit_ t (Trace.Remove_part { whole; part })
let remove_ref t ~src ~dst = unit_ t (Trace.Remove_ref { src; dst })
let delete_node t oid = unit_ t (Trace.Delete oid)

(* {2 Attributes} *)

let attrs t oid =
  match value t (Trace.Attrs oid) with
  | Trace.V_ints [ k; u; ten; hundred; million ] -> (k, u, ten, hundred, million)
  | _ -> failwith "remote: malformed attrs outcome"

let kind t oid =
  match attrs t oid with
  | 0, _, _, _, _ -> Schema.Internal
  | 1, _, _, _, _ -> Schema.Text
  | 2, _, _, _, _ -> Schema.Form
  | 3, _, _, _, _ -> Schema.Draw
  | k, _, _, _, _ -> failwith (Printf.sprintf "remote: unknown kind code %d" k)

let unique_id t oid =
  let _, u, _, _, _ = attrs t oid in
  u

let ten t oid =
  let _, _, v, _, _ = attrs t oid in
  v

let hundred t oid =
  let _, _, _, v, _ = attrs t oid in
  v

let million t oid =
  let _, _, _, _, v = attrs t oid in
  v

let set_hundred t oid value = unit_ t (Trace.Set_hundred { oid; value })
let set_dyn_attr t oid key value = unit_ t (Trace.Set_dyn { oid; key; value })
let dyn_attr t oid key = int_opt t (Trace.Dyn_attr { oid; key })

(* {2 Associative lookup} *)

let lookup_unique t ~doc uid = int_opt t (Trace.Lookup_unique { doc; uid })
let range_unique t ~doc ~lo ~hi = oids t (Trace.Range_unique { doc; lo; hi })
let range_hundred t ~doc ~lo ~hi = oids t (Trace.Range_hundred { doc; lo; hi })
let range_million t ~doc ~lo ~hi = oids t (Trace.Range_million { doc; lo; hi })

(* {2 Traversal} *)

let prefetch_nodes _t _oids = ()
let children t oid = Array.of_list (oids t (Trace.Children oid))
let parent t oid = int_opt t (Trace.Parent oid)
let parts t oid = Array.of_list (oids t (Trace.Parts oid))
let part_of t oid = Array.of_list (oids t (Trace.Part_of oid))
let refs_to t oid = links t (Trace.Refs_to oid)
let refs_from t oid = links t (Trace.Refs_from oid)

(* {2 Content} *)

let text t oid =
  match value t (Trace.Text oid) with
  | Trace.V_string s -> s
  | _ -> failwith "remote: expected string outcome"

let set_text t oid value = unit_ t (Trace.Set_text { oid; value })

let form t oid =
  match value t (Trace.Form_get oid) with
  | Trace.V_form (_, _, data) -> Bitmap.of_bytes (Bytes.of_string data)
  | _ -> failwith "remote: expected form outcome"

let set_form t oid f =
  unit_ t
    (Trace.Form_set
       {
         oid;
         width = Bitmap.width f;
         height = Bitmap.height f;
         data = Bytes.to_string (Bitmap.to_bytes f);
       })

(* {2 Scans and result storage} *)

let iter_doc t ~doc f = List.iter f (oids t (Trace.Doc_oids doc))
let node_count t ~doc = int_ t (Trace.Node_count doc)
let store_result_list t l = unit_ t (Trace.Store_results l)

(* {2 Introspection} *)

(* The state lives on the server; there is nothing local to clone. *)
let snapshot _ = None

let io_description t =
  Printf.sprintf "wire: %d requests, %d remote ops" t.requests t.remote_ops

let reset_io t =
  t.requests <- 0;
  t.remote_ops <- 0

let instance t =
  Backend.Instance
    ( (module struct
        type nonrec t = t

        let name = name
        let description = description
        let begin_txn = begin_txn
        let commit = commit
        let abort = abort
        let clear_caches = clear_caches
        let create_node = create_node
        let add_child = add_child
        let add_part = add_part
        let add_children = add_children
        let add_parts = add_parts
        let add_ref = add_ref
        let remove_child = remove_child
        let remove_part = remove_part
        let remove_ref = remove_ref
        let delete_node = delete_node
        let kind = kind
        let unique_id = unique_id
        let ten = ten
        let hundred = hundred
        let million = million
        let set_hundred = set_hundred
        let set_dyn_attr = set_dyn_attr
        let dyn_attr = dyn_attr
        let lookup_unique = lookup_unique
        let range_unique = range_unique
        let range_hundred = range_hundred
        let range_million = range_million
        let prefetch_nodes = prefetch_nodes
        let children = children
        let parent = parent
        let parts = parts
        let part_of = part_of
        let refs_to = refs_to
        let refs_from = refs_from
        let text = text
        let set_text = set_text
        let form = form
        let set_form = set_form
        let iter_doc = iter_doc
        let node_count = node_count
        let store_result_list = store_result_list
        let snapshot = snapshot
        let io_description = io_description
        let reset_io = reset_io
      end : Backend.S with type t = t),
      t )

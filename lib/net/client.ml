open Hyper_core
module Obs = Hyper_obs.Obs
module Sync = Hyper_util.Sync

exception Connection_lost of string
exception Server_fault of Wire.fault_code * string

let m_reconnects = Obs.Counter.make "hyper_net_client_reconnects_total"
let m_calls = Obs.Counter.make "hyper_net_client_calls_total"

type t = {
  address : Netaddr.t;
  client_name : string;
  max_frame : int;
  backoff_base_s : float;
  backoff_max_s : float;
  max_attempts : int;
  mutable fd : Unix.file_descr option;
  mutable dec : Wire.response Wire.Decoder.t;
  mutable session_id : int;
  mutable next_rid : int;
  mutable pending : int list;  (* submitted, not yet awaited; oldest first *)
  mutable arrived : (int * Trace.outcome list) list;  (* awaited out of order *)
  mutable txn_open : bool;
  mutable generation : int;  (* successful handshakes *)
}

let session t = t.session_id
let generation t = t.generation
let in_txn t = t.txn_open

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let lost t msg =
  (match t.fd with Some fd -> close_quiet fd | None -> ());
  t.fd <- None;
  raise (Connection_lost msg)

(* Socket I/O, not store I/O: the Vfs seam covers page/WAL files; the
   wire byte stream talks to the OS directly. *)
let[@lint.allow "vfs-boundary"] send_all t payload =
  match t.fd with
  | None -> lost t "not connected"
  | Some fd -> (
    let len = Bytes.length payload in
    let off = ref 0 in
    try
      while !off < len do
        let n = Unix.write fd payload !off (len - !off) in
        if n <= 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
        off := !off + n
      done
    with Unix.Unix_error (e, _, _) -> lost t (Unix.error_message e))

(* Read until the decoder yields one response.  Socket read — outside
   the Vfs seam, like [send_all]. *)
let[@lint.allow "vfs-boundary"] read_response t =
  let buf = Bytes.create 8192 in
  let rec go () =
    match Wire.Decoder.next t.dec with
    | Some (Ok r) -> r
    | Some (Error e) -> lost t (Wire.error_to_string e)
    | None -> (
      match t.fd with
      | None -> lost t "not connected"
      | Some fd -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> lost t "connection closed by server"
        | n ->
          Wire.Decoder.feed t.dec buf ~off:0 ~len:n;
          go ()
        | exception Unix.Unix_error (e, _, _) -> lost t (Unix.error_message e)))
  in
  go ()

let handshake t fd =
  t.fd <- Some fd;
  t.dec <- Wire.Decoder.create_response ~max_frame:t.max_frame ();
  t.pending <- [];
  t.arrived <- [];
  t.txn_open <- false;
  send_all t
    (Wire.encode_request
       (Wire.Hello
          { client = t.client_name; protocol = Wire.protocol_version }));
  match read_response t with
  | Wire.Welcome { session; _ } ->
    t.session_id <- session;
    t.generation <- t.generation + 1
  | Wire.Fault { code; message; _ } -> raise (Server_fault (code, message))
  | Wire.Results _ | Wire.Pong _ -> lost t "unexpected handshake reply"

(* Exponential backoff over connection attempts.  Uses a real sleep:
   this is wall-clock peer recovery, not simulated latency. *)
let reconnect t =
  let rec attempt n delay =
    let fd = Unix.socket (Netaddr.domain t.address) Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd (Netaddr.to_sockaddr t.address);
      handshake t fd
    with
    | () -> ()
    | exception e ->
      close_quiet fd;
      t.fd <- None;
      if n + 1 >= t.max_attempts then
        raise
          (Connection_lost
             (Printf.sprintf "%s (after %d attempts)" (Printexc.to_string e)
                (n + 1)))
      else begin
        Obs.Counter.incr m_reconnects;
        Thread.delay delay;
        attempt (n + 1) (Float.min (2.0 *. delay) t.backoff_max_s)
      end
  in
  attempt 0 t.backoff_base_s

let connect ?(client_name = "hyperclient") ?(max_frame = Wire.max_frame_default)
    ?(backoff_base_s = 0.05) ?(backoff_max_s = 2.0) ?(max_attempts = 8) address
    =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t =
    {
      address;
      client_name;
      max_frame;
      backoff_base_s;
      backoff_max_s;
      max_attempts;
      fd = None;
      dec = Wire.Decoder.create_response ~max_frame ();
      session_id = 0;
      next_rid = 1;
      pending = [];
      arrived = [];
      txn_open = false;
      generation = 0;
    }
  in
  reconnect t;
  t

let track_txn t ops =
  List.iter
    (fun op ->
      match op with
      | Trace.Begin -> t.txn_open <- true
      | Trace.Commit | Trace.Abort -> t.txn_open <- false
      | _ -> ())
    ops

let submit t ops =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  send_all t (Wire.encode_request (Wire.Ops { rid; ops }));
  t.pending <- t.pending @ [ rid ];
  track_txn t ops;
  rid

let rec await t rid =
  match List.assoc_opt rid t.arrived with
  | Some outcomes ->
    t.arrived <- List.remove_assoc rid t.arrived;
    outcomes
  | None ->
    if not (List.mem rid t.pending) then
      invalid_arg (Printf.sprintf "Client.await: unknown rid %d" rid);
    (match read_response t with
    | Wire.Results { rid = got; outcomes } ->
      t.pending <- List.filter (fun r -> r <> got) t.pending;
      t.arrived <- (got, outcomes) :: t.arrived
    | Wire.Fault { rid = got; code; message } ->
      if got >= 0 then t.pending <- List.filter (fun r -> r <> got) t.pending;
      raise (Server_fault (code, message))
    | Wire.Pong _ -> ()
    | Wire.Welcome _ -> lost t "unexpected Welcome mid-stream");
    await t rid

let call t ops =
  Obs.Counter.incr m_calls;
  let was_in_txn = t.txn_open in
  try await t (submit t ops)
  with Connection_lost msg ->
    (* Retry once, but only when the lost connection had no open
       transaction: mid-txn server state is gone and a blind replay of
       this batch alone would corrupt. *)
    if was_in_txn then raise (Connection_lost msg)
    else begin
      reconnect t;
      await t (submit t ops)
    end

let snapshot t ~active =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  send_all t (Wire.encode_request (Wire.Snapshot { rid; active }));
  match read_response t with
  | Wire.Results { rid = got; _ } when got = rid -> ()
  | Wire.Results _ | Wire.Pong _ -> lost t "out-of-order snapshot reply"
  | Wire.Fault { code; message; _ } -> raise (Server_fault (code, message))
  | Wire.Welcome _ -> lost t "unexpected Welcome mid-stream"

let ping t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  send_all t (Wire.encode_request (Wire.Ping { rid }));
  match read_response t with
  | Wire.Pong { rid = got } when got = rid -> ()
  | Wire.Pong _ | Wire.Results _ -> lost t "out-of-order ping reply"
  | Wire.Fault { code; message; _ } -> raise (Server_fault (code, message))
  | Wire.Welcome _ -> lost t "unexpected Welcome mid-stream"

let close t =
  if t.fd <> None then begin
    (try send_all t (Wire.encode_request Wire.Bye)
     with Connection_lost _ -> ());
    (match t.fd with Some fd -> close_quiet fd | None -> ());
    t.fd <- None
  end

module Pool = struct
  type conn = t

  type t = {
    conns : conn array;
    lock : Sync.Mutex.t;
    mutable next : int;
  }

  let create ?client_name ?backoff_base_s ?backoff_max_s ?max_attempts ~size
      address =
    if size <= 0 then invalid_arg "Client.Pool.create: size must be positive";
    let conns =
      Array.init size (fun i ->
          let client_name =
            Option.map (fun n -> Printf.sprintf "%s-%d" n i) client_name
          in
          connect ?client_name ?backoff_base_s ?backoff_max_s ?max_attempts
            address)
    in
    { conns; lock = Sync.Mutex.create ~rank:40 "net.client.pool"; next = 0 }

  let with_conn p f =
    Sync.Mutex.lock p.lock;
    let c = p.conns.(p.next mod Array.length p.conns) in
    p.next <- p.next + 1;
    Sync.Mutex.unlock p.lock;
    f c

  let close p = Array.iter close p.conns
end

open Hyper_core
module Obs = Hyper_obs.Obs
module Sync = Hyper_util.Sync

let m_sessions = Obs.Counter.make "hyper_net_sessions_total"
let m_requests = Obs.Counter.make "hyper_net_requests_total"
let m_ops = Obs.Counter.make "hyper_net_ops_total"
let m_faults = Obs.Counter.make "hyper_net_faults_total"
let m_batch_ns = Obs.Histogram.make "hyper_net_server_batch_ns"

let ignore_sigpipe () =
  (* A peer that vanished between select and write must surface as
     EPIPE, not kill the process. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

type session = {
  sid : int;
  fd : Unix.file_descr;
  dec : Wire.request Wire.Decoder.t;
  mutable in_txn : bool;
  mutable holds_lease : bool;
  mutable snap : Backend.instance option;
      (* snapshot mode: batches read this detached view, lease-free *)
  mutable closing : bool;
  mutable thread : Thread.t option;
}

type t = {
  name : string;
  reraise : exn -> bool;
  max_frame : int;
  layout : Layout.t;
  instance : Backend.instance;
  address : Netaddr.t;
  listen_fd : Unix.file_descr;
  engine : Sync.Mutex.t;  (* the lease; see server.mli *)
  lock : Sync.Mutex.t;  (* guards sessions/flags below *)
  mutable sessions : session list;
  mutable draining : bool;
  mutable drain_grace : float;
  mutable killed : bool;
  mutable crash : exn option;
  mutable next_sid : int;
  mutable accept_thread : Thread.t option;
}

let addr t = t.address
let crashed t = t.crash

let locked t f = Sync.Mutex.with_lock t.lock f

let session_count t = locked t (fun () -> List.length t.sessions)

(* --- socket plumbing --- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Sockets are not store files: the Vfs seam covers page/WAL I/O, and
   crash injection for the served backend happens underneath it.  The
   network byte stream talks to the OS directly. *)
let[@lint.allow "vfs-boundary"] send_all fd payload =
  let len = Bytes.length payload in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd payload !off (len - !off) in
    if n <= 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    off := !off + n
  done

(* --- session execution --- *)

let release_lease t sess =
  if sess.holds_lease then begin
    sess.holds_lease <- false;
    Sync.Mutex.unlock t.engine
  end

let rollback t sess =
  (* The client vanished (or drain expired) mid-transaction. *)
  if sess.in_txn then begin
    (match Trace.apply ~layout:t.layout t.instance Trace.Abort with
    | Trace.Done _ | Trace.Raised _ -> ());
    sess.in_txn <- false
  end;
  release_lease t sess

(* Snapshot mode: the batch reads the session's detached view and never
   touches the engine lease — a pipelined snapshot read proceeds while
   another session's writer transaction holds it.  Anything that could
   change state (or pretends to: transaction control) is refused. *)
let exec_snapshot_batch t snap rid ops =
  let t0 = Hyper_util.Mtime_stub.now_ns () in
  let outcomes =
    List.map
      (fun op ->
        match op with
        | Trace.Begin | Trace.Commit | Trace.Abort ->
          Trace.Raised "Snapshot_read_only"
        | op when Trace.is_mutation op -> Trace.Raised "Snapshot_read_only"
        | op -> Trace.apply ~reraise:t.reraise ~layout:t.layout snap op)
      ops
  in
  Obs.Counter.incr m_requests;
  Obs.Counter.add m_ops (List.length ops);
  Obs.Histogram.observe m_batch_ns
    (Int64.to_float (Int64.sub (Hyper_util.Mtime_stub.now_ns ()) t0));
  Wire.Results { rid; outcomes }

let exec_batch t sess rid ops =
  match sess.snap with
  | Some snap -> exec_snapshot_batch t snap rid ops
  | None ->
    if not sess.holds_lease then begin
      Sync.Mutex.lock t.engine;
      sess.holds_lease <- true
    end;
    let t0 = Hyper_util.Mtime_stub.now_ns () in
    let outcomes =
      List.map
        (fun op ->
          let o =
            Trace.apply ~reraise:t.reraise ~layout:t.layout t.instance op
          in
          (match (op, o) with
          | Trace.Begin, Trace.Done _ -> sess.in_txn <- true
          | (Trace.Commit | Trace.Abort), _ -> sess.in_txn <- false
          | _ -> ());
          o)
        ops
    in
    Obs.Counter.incr m_requests;
    Obs.Counter.add m_ops (List.length ops);
    Obs.Histogram.observe m_batch_ns
      (Int64.to_float (Int64.sub (Hyper_util.Mtime_stub.now_ns ()) t0));
    if not sess.in_txn then release_lease t sess;
    Wire.Results { rid; outcomes }

let take_snapshot t sess rid =
  if sess.in_txn then begin
    Obs.Counter.incr m_faults;
    Wire.Fault
      {
        rid;
        code = Wire.F_bad_op;
        message = "snapshot: session is inside a transaction";
      }
  end
  else begin
    (* Hold the lease only for the clone itself, so the view cannot
       interleave with another session's in-flight batch; it is
       released before any snapshot read runs. *)
    Sync.Mutex.lock t.engine;
    let snap = Backend.instance_snapshot t.instance in
    Sync.Mutex.unlock t.engine;
    match snap with
    | None ->
      Obs.Counter.incr m_faults;
      Wire.Fault
        {
          rid;
          code = Wire.F_bad_op;
          message =
            Printf.sprintf "snapshot: backend %s cannot produce a detached view"
              (Backend.instance_name t.instance);
        }
    | Some view ->
      sess.snap <- Some view;
      Wire.Results { rid; outcomes = [ Trace.Done Trace.V_unit ] }
  end

let handle_request t sess = function
  | Wire.Hello { client = _; protocol } ->
    if protocol <> Wire.protocol_version then begin
      Obs.Counter.incr m_faults;
      sess.closing <- true;
      Some
        (Wire.Fault
           {
             rid = -1;
             code = Wire.F_bad_frame;
             message =
               Printf.sprintf "protocol %d, server speaks %d" protocol
                 Wire.protocol_version;
           })
    end
    else
      Some
        (Wire.Welcome
           {
             session = sess.sid;
             server = t.name;
             protocol = Wire.protocol_version;
           })
  | Wire.Ping { rid } -> Some (Wire.Pong { rid })
  | Wire.Snapshot { rid; active } ->
    if active then Some (take_snapshot t sess rid)
    else begin
      sess.snap <- None;
      Some (Wire.Results { rid; outcomes = [ Trace.Done Trace.V_unit ] })
    end
  | Wire.Bye ->
    sess.closing <- true;
    None
  | Wire.Ops { rid; ops } -> (
    (* Deliberate normalization seam: crash points are checked first
       and kill the server un-acked; every other backend exception
       becomes a typed Fault reply after rollback — a serving loop
       must not die on a bad request. *)
    try Some (exec_batch t sess rid ops)
    with e ->
      (if t.reraise e then begin
        (* Crash point: die without acking the in-flight batch.  The
           engine mutex stays held by this (exiting) thread — the
           server object is dead and nothing locks it again. *)
        t.crash <- Some e;
        t.killed <- true;
        None
      end
      else begin
        Obs.Counter.incr m_faults;
        if sess.in_txn then rollback t sess else release_lease t sess;
        Some
          (Wire.Fault
             { rid; code = Wire.F_internal; message = Printexc.to_string e })
      end)
      [@lint.allow "no-catchall-swallow"])

(* Pump every complete frame out of the decoder, replying in arrival
   order — the pipelining/in-order guarantee is exactly this loop. *)
let process_frames t sess =
  let continue = ref true in
  while !continue && (not sess.closing) && not t.killed do
    match Wire.Decoder.next sess.dec with
    | None -> continue := false
    | Some (Error e) ->
      Obs.Counter.incr m_faults;
      (try
         send_all sess.fd
           (Wire.encode_response
              (Wire.Fault
                 {
                   rid = -1;
                   code = Wire.F_bad_frame;
                   message = Wire.error_to_string e;
                 }))
       with Unix.Unix_error _ -> ());
      sess.closing <- true
    | Some (Ok req) -> (
      match handle_request t sess req with
      | None -> ()
      | Some resp -> (
        try send_all sess.fd (Wire.encode_response resp)
        with Unix.Unix_error _ -> sess.closing <- true))
  done

let close_session t sess =
  (* After [kill] the engine must not be touched (the crash fuzzer's
     backend raises on any access); just drop the socket. *)
  if not t.killed then rollback t sess;
  close_quiet sess.fd;
  locked t (fun () ->
      t.sessions <- List.filter (fun s -> s.sid <> sess.sid) t.sessions)

let session_loop t sess =
  let buf = Bytes.create 8192 in
  let drain_deadline = ref None in
  (try
     while (not sess.closing) && not t.killed do
       process_frames t sess;
       if (not sess.closing) && not t.killed then begin
         (match (t.draining, !drain_deadline) with
         | true, None ->
           drain_deadline :=
             Some
               (Int64.add
                  (Hyper_util.Mtime_stub.now_ns ())
                  (Int64.of_float (t.drain_grace *. 1e9)))
         | _ -> ());
         (match Unix.select [ sess.fd ] [] [] 0.05 with
         | [], _, _ ->
           if !drain_deadline <> None then
             (* Draining and idle: everything received has been
                answered; time to go. *)
             sess.closing <- true
         | _ -> (
           (* socket read, not store I/O — outside the Vfs seam *)
           match
             (Unix.read sess.fd buf 0 (Bytes.length buf)
             [@lint.allow "vfs-boundary"])
           with
           | 0 -> sess.closing <- true (* EOF *)
           | n -> Wire.Decoder.feed sess.dec buf ~off:0 ~len:n
           | exception
               Unix.Unix_error
                 ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
             sess.closing <- true));
         match !drain_deadline with
         | Some d when Hyper_util.Mtime_stub.now_ns () > d ->
           sess.closing <- true
         | _ -> ()
       end
     done
   with Unix.Unix_error _ -> ());
  close_session t sess

(* --- accept loop and lifecycle --- *)

let accept_loop t =
  (try
     while not (t.draining || t.killed) do
       match Unix.select [ t.listen_fd ] [] [] 0.05 with
       | [], _, _ -> ()
       | _ -> (
         match Unix.accept t.listen_fd with
         | fd, _ ->
           Obs.Counter.incr m_sessions;
           let sid =
             locked t (fun () ->
                 let s = t.next_sid in
                 t.next_sid <- s + 1;
                 s)
           in
           let sess =
             {
               sid;
               fd;
               dec = Wire.Decoder.create_request ~max_frame:t.max_frame ();
               in_txn = false;
               holds_lease = false;
               snap = None;
               closing = false;
               thread = None;
             }
           in
           locked t (fun () -> t.sessions <- sess :: t.sessions);
           sess.thread <- Some (Thread.create (fun () -> session_loop t sess) ())
         | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ())
     done
   with Unix.Unix_error _ -> ());
  close_quiet t.listen_fd

let start ?(name = "hypermodel") ?(reraise = fun _ -> false)
    ?(max_frame = Wire.max_frame_default) ~layout instance address =
  ignore_sigpipe ();
  (match address with
  | Netaddr.Unix_sock path when Sys.file_exists path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let listen_fd = Unix.socket (Netaddr.domain address) Unix.SOCK_STREAM 0 in
  (match address with
  | Netaddr.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
  | Netaddr.Unix_sock _ -> ());
  Unix.bind listen_fd (Netaddr.to_sockaddr address);
  Unix.listen listen_fd 512;
  let t =
    {
      name;
      reraise;
      max_frame;
      layout;
      instance;
      address;
      listen_fd;
      engine = Sync.Mutex.create ~rank:10 "net.server.engine";
      lock = Sync.Mutex.create ~rank:40 "net.server.sessions";
      sessions = [];
      draining = false;
      drain_grace = 5.0;
      killed = false;
      crash = None;
      next_sid = 1;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let join_all t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  let rec drain_threads () =
    match locked t (fun () -> t.sessions) with
    | [] -> ()
    | sessions ->
      List.iter
        (fun s -> match s.thread with Some th -> Thread.join th | None -> ())
        sessions;
      drain_threads ()
  in
  drain_threads ()

let drain ?(grace_s = 5.0) t =
  locked t (fun () ->
      t.drain_grace <- grace_s;
      t.draining <- true);
  join_all t

let kill t =
  locked t (fun () -> t.killed <- true);
  close_quiet t.listen_fd;
  (* Snapshot under the lock, close outside it: [Unix.close] can block
     on a socket with unflushed data, and the session threads never
     need the list to notice [killed]. *)
  let sessions = locked t (fun () -> t.sessions) in
  List.iter (fun s -> close_quiet s.fd) sessions;
  join_all t

(** The binary wire protocol of the socket server.

    Frames are length-prefixed and CRC-framed:

    {v
    offset 0   magic      2 bytes  "HM"
    offset 2   version    1 byte   {!protocol_version}
    offset 3   kind       1 byte   frame tag (requests < 128 <= responses)
    offset 4   body len   4 bytes  little-endian
    offset 8   body CRC   4 bytes  CRC-32 (IEEE) of the body
    offset 12  body
    v}

    Request bodies carry batches of reified {!Hyper_core.Trace.op} —
    the same vocabulary the differential fuzzer replays, serialised in
    its canonical one-line grammar — so anything expressible against
    {!Hyper_core.Backend.S} is expressible on the wire, and a captured
    byte stream doubles as a replayable trace.  Response bodies carry
    {!Hyper_core.Trace.outcome} values in a binary codec (the text
    rendering of outcomes elides long lists and is not re-readable).

    Decoding is stream-oriented and partial-read resilient: bytes are
    fed to a {!Decoder} in whatever chunks the transport produced
    (including one byte at a time) and whole frames pop out as they
    complete.  Every failure is a typed {!error}; no input, however
    torn or corrupt, raises. *)

open Hyper_core

val protocol_version : int

val max_frame_default : int
(** Default decode-side frame cap (16 MiB): an [Ops] batch over a
    level-6 store result or a snapshot-sized form fits; a corrupt
    length field does not cause a multi-gigabyte allocation. *)

(** {2 Frames} *)

type request =
  | Hello of { client : string; protocol : int }
      (** First frame on a connection; the server replies [Welcome]. *)
  | Ops of { rid : int; ops : Trace.op list }
      (** One pipelined request: apply the batch in order, reply
          [Results] with one outcome per op under the same [rid].
          Clients assign [rid]s monotonically; the server replies in
          request order. *)
  | Ping of { rid : int }
  | Snapshot of { rid : int; active : bool }
      (** Toggle snapshot mode on the session.  [active = true] pins a
          consistent read-only view of the committed state; subsequent
          [Ops] batches read the view without taking the engine lease,
          so they proceed while another session holds it.  Mutations and
          transaction control inside a snapshot raise
          [Snapshot_read_only].  [active = false] drops the view.  The
          server replies [Results] with one [Done V_unit], or [Fault]
          with [F_bad_op] when the backend cannot snapshot or the
          session is inside a transaction. *)
  | Bye  (** Orderly goodbye; the server closes after its in-flight
             replies. *)

type fault_code =
  | F_bad_frame  (** framing/decoding error; the connection is dropped *)
  | F_bad_op  (** an op line failed to parse *)
  | F_draining  (** server is draining; no new requests accepted *)
  | F_internal  (** unexpected server-side failure *)

type response =
  | Welcome of { session : int; server : string; protocol : int }
  | Results of { rid : int; outcomes : Trace.outcome list }
  | Fault of { rid : int; code : fault_code; message : string }
      (** [rid = -1] means the fault is connection-level, not a reply
          to a particular request. *)
  | Pong of { rid : int }

val fault_code_to_string : fault_code -> string

(** {2 Encoding} *)

val encode_request : request -> bytes
val encode_response : response -> bytes

(** {2 Decoding} *)

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_crc of { expected : int; got : int }
  | Oversized of { length : int; limit : int }
  | Unknown_kind of int
  | Malformed of string

val error_to_string : error -> string

module Decoder : sig
  (** A streaming decoder for one direction of one connection.

      [feed] {e copies} the given slice into the decoder's own buffer:
      callers may (and the server does) reuse their read buffer for the
      next [read] immediately — no decoded frame ever aliases transport
      memory.

      Any error poisons the stream: after a framing or body error,
      every subsequent {!next} returns the same error.  Resynchronising
      inside a corrupt byte stream is guesswork; the peer must drop the
      connection, which is what both ends do. *)

  type 'a t

  val create_request : ?max_frame:int -> unit -> request t
  val create_response : ?max_frame:int -> unit -> response t

  val feed : _ t -> bytes -> off:int -> len:int -> unit
  (** Append a received slice.  @raise Invalid_argument on an invalid
      slice (not on any property of the bytes themselves). *)

  val next : 'a t -> ('a, error) result option
  (** The next complete frame, a typed error, or [None] when more
      bytes are needed. *)

  val buffered : _ t -> int
  (** Bytes fed but not yet consumed by completed frames. *)
end

(** {2 Body codecs} — exposed for tests (round-trip every frame type
    and fuzz the outcome codec directly). *)

val encode_outcome : Buffer.t -> Trace.outcome -> unit
val decode_outcome : bytes -> pos:int ref -> Trace.outcome
(** @raise Failure on malformed input (wrapped into {!Malformed} by the
    frame decoder). *)

open Hyper_storage
module Obs = Hyper_obs.Obs

let m_round_trips =
  Obs.Counter.make "hyper_net_round_trips_total"
    ~help:"client/server request-response exchanges"

let m_batched =
  Obs.Counter.make "hyper_net_batched_round_trips_total"
    ~help:"round trips that carried a page group rather than one page"

let m_bytes =
  Obs.Counter.make "hyper_net_bytes_sent_total" ~help:"payload bytes moved"

let m_server_hits =
  Obs.Counter.make "hyper_net_server_hits_total" ~help:"server page-cache hits"

let m_server_misses =
  Obs.Counter.make "hyper_net_server_misses_total"
    ~help:"server page-cache misses (server disk reads)"

type profile = {
  network : Latency_model.t;
  server_disk : Latency_model.t;
  server_cache_pages : int;
}

type counters = {
  mutable round_trips : int;
  mutable batched_round_trips : int;
  mutable bytes_sent : int;
  mutable server_hits : int;
  mutable server_misses : int;
}

type t = {
  pager : Pager.t;
  network : Latency_model.t;
  server_disk : Latency_model.t;
  (* Server page cache: an O(1) LRU index — the old tick-scan made every
     miss O(cache size), which dominated cold runs with large caches. *)
  cache : (int, unit) Hyper_util.Lru.t;
  mutable all_resident : bool;
  counters : counters;
}

let server_lookup t page =
  let hit = t.all_resident || Hyper_util.Lru.mem t.cache page in
  Hyper_util.Lru.put t.cache page ();
  hit

(* One page fetched on its own: a full request/response round trip, plus
   a server disk read when the server cache misses. *)
let on_read t page =
  t.counters.round_trips <- t.counters.round_trips + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + Page.size;
  Obs.Counter.incr m_round_trips;
  Obs.Counter.add m_bytes Page.size;
  Latency_model.charge t.network ~bytes:Page.size;
  if server_lookup t page then begin
    t.counters.server_hits <- t.counters.server_hits + 1;
    Obs.Counter.incr m_server_hits
  end
  else begin
    t.counters.server_misses <- t.counters.server_misses + 1;
    Obs.Counter.incr m_server_misses;
    Latency_model.charge t.server_disk ~bytes:Page.size
  end

(* A group fetch: the whole batch rides one request/response exchange —
   one per-request network overhead, amortized across the pages — while
   the server still pays one disk read per page it does not have
   cached.  This is the page-at-a-time vs. group-transfer distinction
   of the 1988 client/server OODB designs. *)
let on_read_many t pages =
  let n = List.length pages in
  t.counters.round_trips <- t.counters.round_trips + 1;
  t.counters.batched_round_trips <- t.counters.batched_round_trips + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + (n * Page.size);
  Obs.Counter.incr m_round_trips;
  Obs.Counter.incr m_batched;
  Obs.Counter.add m_bytes (n * Page.size);
  Latency_model.charge t.network ~bytes:(n * Page.size);
  List.iter
    (fun page ->
      if server_lookup t page then begin
        t.counters.server_hits <- t.counters.server_hits + 1;
        Obs.Counter.incr m_server_hits
      end
      else begin
        t.counters.server_misses <- t.counters.server_misses + 1;
        Obs.Counter.incr m_server_misses;
        Latency_model.charge t.server_disk ~bytes:Page.size
      end)
    pages

let on_write t page =
  t.counters.round_trips <- t.counters.round_trips + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + Page.size;
  Obs.Counter.incr m_round_trips;
  Obs.Counter.add m_bytes Page.size;
  Latency_model.charge t.network ~bytes:Page.size;
  (* The written page is now resident in the server cache. *)
  Hyper_util.Lru.put t.cache page ()

let attach ~network ?(server_disk = Latency_model.disk_1988)
    ?(server_cache_pages = 1024) pager =
  let t =
    { pager; network; server_disk;
      cache =
        Hyper_util.Lru.create
          ~initial_size:(2 * max 1 server_cache_pages)
          ~capacity:(max 1 server_cache_pages) ();
      all_resident = false;
      counters =
        { round_trips = 0; batched_round_trips = 0; bytes_sent = 0;
          server_hits = 0; server_misses = 0 } }
  in
  Pager.set_hooks pager ~on_read:(on_read t) ~on_write:(on_write t)
    ~on_read_many:(on_read_many t);
  t

let profile_1988 =
  { network = Latency_model.lan_1988; server_disk = Latency_model.disk_1988;
    server_cache_pages = 1024 }

let profile_test =
  { network = Latency_model.zero; server_disk = Latency_model.zero;
    server_cache_pages = 64 }

let attach_profile (p : profile) pager =
  attach ~network:p.network ~server_disk:p.server_disk
    ~server_cache_pages:p.server_cache_pages pager

let detach t = Pager.clear_hooks t.pager

let counters t = t.counters

let reset_counters t =
  t.counters.round_trips <- 0;
  t.counters.batched_round_trips <- 0;
  t.counters.bytes_sent <- 0;
  t.counters.server_hits <- 0;
  t.counters.server_misses <- 0

let warm_server t = t.all_resident <- true

(* Message-level fault injection, mirroring Vfs.Faulty one layer up: the
   VFS can tear writes, a network can lose, repeat, reorder and delay
   whole messages.  Deterministic under a seed, independent of
   replication (anything pushing bytes point-to-point can use it). *)
module Link = struct
  let m_dropped =
    Obs.Counter.make "hyper_link_dropped_total"
      ~help:"messages discarded by link fault injection"

  let m_duplicated =
    Obs.Counter.make "hyper_link_duplicated_total"
      ~help:"messages delivered twice by link fault injection"

  type plan = {
    seed : int64;
    drop_1_in : int; (* 0 disables, n means 1-in-n *)
    dup_1_in : int;
    reorder_1_in : int;
    delay_1_in : int;
    delay_polls : int; (* how many polls a delayed message sits out *)
  }

  let reliable =
    { seed = 0L; drop_1_in = 0; dup_1_in = 0; reorder_1_in = 0;
      delay_1_in = 0; delay_polls = 2 }

  let faulty ~seed =
    { seed; drop_1_in = 10; dup_1_in = 12; reorder_1_in = 8; delay_1_in = 9;
      delay_polls = 2 }

  type stats = {
    mutable sent : int;
    mutable delivered : int;
    mutable dropped : int;
    mutable duplicated : int;
    mutable reordered : int;
    mutable delayed : int;
  }

  type t = {
    mutable plan : plan;
    mutable prng : Hyper_util.Prng.t;
    queue : bytes Queue.t;
    (* delayed messages: (polls remaining, payload) *)
    mutable parked : (int * bytes) list;
    mutable down : bool;
    stats : stats;
  }

  let create ?(plan = reliable) () =
    { plan; prng = Hyper_util.Prng.create plan.seed; queue = Queue.create ();
      parked = []; down = false;
      stats =
        { sent = 0; delivered = 0; dropped = 0; duplicated = 0;
          reordered = 0; delayed = 0 } }

  let set_plan t plan =
    t.plan <- plan;
    t.prng <- Hyper_util.Prng.create plan.seed

  let set_down t down = t.down <- down
  let down t = t.down
  let stats t = t.stats

  let hit t one_in = one_in > 0 && Hyper_util.Prng.int t.prng one_in = 0

  (* Reordering swaps the newcomer with the current queue head — enough
     to break any receiver that assumes arrival order, without needing
     an arbitrary permutation. *)
  let enqueue t msg =
    if hit t t.plan.reorder_1_in && not (Queue.is_empty t.queue) then begin
      t.stats.reordered <- t.stats.reordered + 1;
      let head = Queue.pop t.queue in
      let rest = Queue.copy t.queue in
      Queue.clear t.queue;
      Queue.push msg t.queue;
      Queue.push head t.queue;
      Queue.transfer rest t.queue
    end
    else Queue.push msg t.queue

  let send t msg =
    t.stats.sent <- t.stats.sent + 1;
    if t.down || hit t t.plan.drop_1_in then begin
      t.stats.dropped <- t.stats.dropped + 1;
      Obs.Counter.incr m_dropped
    end
    else begin
      let copies =
        if hit t t.plan.dup_1_in then begin
          t.stats.duplicated <- t.stats.duplicated + 1;
          Obs.Counter.incr m_duplicated;
          2
        end
        else 1
      in
      for _ = 1 to copies do
        if hit t t.plan.delay_1_in then begin
          t.stats.delayed <- t.stats.delayed + 1;
          t.parked <- t.parked @ [ (t.plan.delay_polls, Bytes.copy msg) ]
        end
        else enqueue t (Bytes.copy msg)
      done
    end

  (* Age the parked messages by one poll; release the due ones. *)
  let tick_parked t =
    let due, still =
      List.partition (fun (polls, _) -> polls <= 1) t.parked
    in
    t.parked <- List.map (fun (polls, m) -> (polls - 1, m)) still;
    List.iter (fun (_, m) -> enqueue t m) due

  let poll t =
    if t.down then None
    else begin
      tick_parked t;
      match Queue.take_opt t.queue with
      | Some m ->
        t.stats.delivered <- t.stats.delivered + 1;
        Some m
      | None -> None
    end

  let pending t = Queue.length t.queue + List.length t.parked
end

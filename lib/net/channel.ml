open Hyper_storage

type profile = {
  network : Latency_model.t;
  server_disk : Latency_model.t;
  server_cache_pages : int;
}

type counters = {
  mutable round_trips : int;
  mutable bytes_sent : int;
  mutable server_hits : int;
  mutable server_misses : int;
}

(* Intrusive doubly-linked recency list: O(1) touch and eviction.  The
   old tick-scan made every server-cache miss O(cache size), which
   dominated cold runs with large server caches. *)
type lnode = {
  l_page : int;
  mutable l_prev : lnode option;
  mutable l_next : lnode option;
}

type t = {
  pager : Pager.t;
  network : Latency_model.t;
  server_disk : Latency_model.t;
  cache_capacity : int;
  cache : (int, lnode) Hashtbl.t;
  mutable lru_head : lnode option; (* most recently used *)
  mutable lru_tail : lnode option; (* least recently used *)
  mutable all_resident : bool;
  counters : counters;
}

let lru_unlink t n =
  (match n.l_prev with
  | Some p -> p.l_next <- n.l_next
  | None -> t.lru_head <- n.l_next);
  (match n.l_next with
  | Some s -> s.l_prev <- n.l_prev
  | None -> t.lru_tail <- n.l_prev);
  n.l_prev <- None;
  n.l_next <- None

let lru_push_front t n =
  n.l_next <- t.lru_head;
  (match t.lru_head with
  | Some h -> h.l_prev <- Some n
  | None -> t.lru_tail <- Some n);
  t.lru_head <- Some n

let cache_touch t page =
  match Hashtbl.find_opt t.cache page with
  | Some n ->
    lru_unlink t n;
    lru_push_front t n
  | None ->
    if Hashtbl.length t.cache >= t.cache_capacity then begin
      match t.lru_tail with
      | Some victim ->
        lru_unlink t victim;
        Hashtbl.remove t.cache victim.l_page
      | None -> ()
    end;
    let n = { l_page = page; l_prev = None; l_next = None } in
    lru_push_front t n;
    Hashtbl.add t.cache page n

let server_lookup t page =
  let hit = t.all_resident || Hashtbl.mem t.cache page in
  cache_touch t page;
  hit

let on_read t page =
  t.counters.round_trips <- t.counters.round_trips + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + Page.size;
  Latency_model.charge t.network ~bytes:Page.size;
  if server_lookup t page then
    t.counters.server_hits <- t.counters.server_hits + 1
  else begin
    t.counters.server_misses <- t.counters.server_misses + 1;
    Latency_model.charge t.server_disk ~bytes:Page.size
  end

let on_write t page =
  t.counters.round_trips <- t.counters.round_trips + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + Page.size;
  Latency_model.charge t.network ~bytes:Page.size;
  (* The written page is now resident in the server cache. *)
  cache_touch t page

let attach ~network ?(server_disk = Latency_model.disk_1988)
    ?(server_cache_pages = 1024) pager =
  let t =
    { pager; network; server_disk; cache_capacity = server_cache_pages;
      cache = Hashtbl.create (2 * server_cache_pages); lru_head = None;
      lru_tail = None; all_resident = false;
      counters =
        { round_trips = 0; bytes_sent = 0; server_hits = 0; server_misses = 0 } }
  in
  Pager.set_hooks pager ~on_read:(on_read t) ~on_write:(on_write t);
  t

let profile_1988 =
  { network = Latency_model.lan_1988; server_disk = Latency_model.disk_1988;
    server_cache_pages = 1024 }

let attach_profile (p : profile) pager =
  attach ~network:p.network ~server_disk:p.server_disk
    ~server_cache_pages:p.server_cache_pages pager

let detach t = Pager.clear_hooks t.pager

let counters t = t.counters

let reset_counters t =
  t.counters.round_trips <- 0;
  t.counters.bytes_sent <- 0;
  t.counters.server_hits <- 0;
  t.counters.server_misses <- 0

let warm_server t = t.all_resident <- true

open Hyper_core

let protocol_version = 1
let max_frame_default = 16 * 1024 * 1024
let magic0 = Char.code 'H'
let magic1 = Char.code 'M'
let header_bytes = 12

(* CRC-32 (IEEE), shared with the page checksums: the wire only needs
   to catch truncation and bit rot, and one table beats two. *)
let crc = Hyper_storage.Page.checksum

type request =
  | Hello of { client : string; protocol : int }
  | Ops of { rid : int; ops : Trace.op list }
  | Ping of { rid : int }
  | Snapshot of { rid : int; active : bool }
  | Bye

type fault_code = F_bad_frame | F_bad_op | F_draining | F_internal

type response =
  | Welcome of { session : int; server : string; protocol : int }
  | Results of { rid : int; outcomes : Trace.outcome list }
  | Fault of { rid : int; code : fault_code; message : string }
  | Pong of { rid : int }

let fault_code_to_string = function
  | F_bad_frame -> "bad-frame"
  | F_bad_op -> "bad-op"
  | F_draining -> "draining"
  | F_internal -> "internal"

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_crc of { expected : int; got : int }
  | Oversized of { length : int; limit : int }
  | Unknown_kind of int
  | Malformed of string

let error_to_string = function
  | Bad_magic m -> Printf.sprintf "bad magic 0x%04x" m
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_crc { expected; got } ->
    Printf.sprintf "body CRC mismatch (expected %08x, got %08x)" expected got
  | Oversized { length; limit } ->
    Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" length limit
  | Unknown_kind k -> Printf.sprintf "unknown frame kind %d" k
  | Malformed msg -> "malformed body: " ^ msg

(* --- body writers --- *)

let add_int buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_bool buf b = Buffer.add_uint8 buf (if b then 1 else 0)

let encode_value buf = function
  | Trace.V_unit -> Buffer.add_uint8 buf 0
  | Trace.V_int n ->
    Buffer.add_uint8 buf 1;
    add_int buf n
  | Trace.V_int_opt None -> Buffer.add_uint8 buf 2
  | Trace.V_int_opt (Some n) ->
    Buffer.add_uint8 buf 3;
    add_int buf n
  | Trace.V_ints l ->
    Buffer.add_uint8 buf 4;
    add_int buf (List.length l);
    List.iter (add_int buf) l
  | Trace.V_oids l ->
    Buffer.add_uint8 buf 5;
    add_int buf (List.length l);
    List.iter (add_int buf) l
  | Trace.V_links l ->
    Buffer.add_uint8 buf 6;
    add_int buf (List.length l);
    List.iter
      (fun (t, f, o) ->
        add_int buf t;
        add_int buf f;
        add_int buf o)
      l
  | Trace.V_pairs l ->
    Buffer.add_uint8 buf 7;
    add_int buf (List.length l);
    List.iter
      (fun (o, d) ->
        add_int buf o;
        add_int buf d)
      l
  | Trace.V_string s ->
    Buffer.add_uint8 buf 8;
    add_str buf s
  | Trace.V_checks l ->
    Buffer.add_uint8 buf 9;
    add_int buf (List.length l);
    List.iter
      (fun (name, ok) ->
        add_str buf name;
        add_bool buf ok)
      l
  | Trace.V_form (w, h, data) ->
    Buffer.add_uint8 buf 10;
    add_int buf w;
    add_int buf h;
    add_str buf data

let encode_outcome buf = function
  | Trace.Done v ->
    Buffer.add_uint8 buf 0;
    encode_value buf v
  | Trace.Raised cls ->
    Buffer.add_uint8 buf 1;
    add_str buf cls

(* --- body readers ---

   All failures funnel through [fail]/[Failure]; the frame decoder maps
   them to [Malformed].  Every length that drives an allocation or a
   loop is validated against the remaining input first, so a corrupt
   count cannot demand gigabytes or spin. *)

let fail fmt = Printf.ksprintf failwith fmt

let read_u8 b pos =
  if !pos + 1 > Bytes.length b then fail "truncated (u8 at %d)" !pos;
  let v = Bytes.get_uint8 b !pos in
  incr pos;
  v

let read_int b pos =
  if !pos + 8 > Bytes.length b then fail "truncated (int at %d)" !pos;
  let v = Int64.to_int (Bytes.get_int64_le b !pos) in
  pos := !pos + 8;
  v

let read_len ~min_elt b pos =
  let n = read_int b pos in
  if n < 0 then fail "negative count %d" n;
  if min_elt > 0 && n * min_elt > Bytes.length b - !pos then
    fail "count %d exceeds remaining input" n;
  n

let read_str b pos =
  let n = read_len ~min_elt:1 b pos in
  if n > Bytes.length b - !pos then fail "truncated (string of %d at %d)" n !pos;
  let s = Bytes.sub_string b !pos n in
  pos := !pos + n;
  s

let read_bool b pos =
  match read_u8 b pos with
  | 0 -> false
  | 1 -> true
  | v -> fail "bad bool %d" v

let read_list ~min_elt b pos elt =
  let n = read_len ~min_elt b pos in
  List.init n (fun _ -> elt b pos)

let decode_value b ~pos =
  match read_u8 b pos with
  | 0 -> Trace.V_unit
  | 1 -> Trace.V_int (read_int b pos)
  | 2 -> Trace.V_int_opt None
  | 3 -> Trace.V_int_opt (Some (read_int b pos))
  | 4 -> Trace.V_ints (read_list ~min_elt:8 b pos read_int)
  | 5 -> Trace.V_oids (read_list ~min_elt:8 b pos read_int)
  | 6 ->
    Trace.V_links
      (read_list ~min_elt:24 b pos (fun b pos ->
           let t = read_int b pos in
           let f = read_int b pos in
           let o = read_int b pos in
           (t, f, o)))
  | 7 ->
    Trace.V_pairs
      (read_list ~min_elt:16 b pos (fun b pos ->
           let o = read_int b pos in
           let d = read_int b pos in
           (o, d)))
  | 8 -> Trace.V_string (read_str b pos)
  | 9 ->
    Trace.V_checks
      (read_list ~min_elt:9 b pos (fun b pos ->
           let name = read_str b pos in
           let ok = read_bool b pos in
           (name, ok)))
  | 10 ->
    let w = read_int b pos in
    let h = read_int b pos in
    let data = read_str b pos in
    Trace.V_form (w, h, data)
  | t -> fail "unknown value tag %d" t

let decode_outcome b ~pos =
  match read_u8 b pos with
  | 0 -> Trace.Done (decode_value b ~pos)
  | 1 -> Trace.Raised (read_str b pos)
  | t -> fail "unknown outcome tag %d" t

(* --- frame assembly --- *)

let frame ~kind body =
  let blen = Bytes.length body in
  let out = Bytes.create (header_bytes + blen) in
  Bytes.set_uint8 out 0 magic0;
  Bytes.set_uint8 out 1 magic1;
  Bytes.set_uint8 out 2 protocol_version;
  Bytes.set_uint8 out 3 kind;
  Bytes.set_int32_le out 4 (Int32.of_int blen);
  Bytes.set_int32_le out 8 (Int32.of_int (crc body));
  Bytes.blit body 0 out header_bytes blen;
  out

let k_hello = 1
and k_ops = 2
and k_ping = 3
and k_bye = 4
and k_snapshot = 5
and k_welcome = 129
and k_results = 130
and k_fault = 131
and k_pong = 132

let encode_request r =
  let buf = Buffer.create 64 in
  let kind =
    match r with
    | Hello { client; protocol } ->
      add_str buf client;
      add_int buf protocol;
      k_hello
    | Ops { rid; ops } ->
      add_int buf rid;
      add_int buf (List.length ops);
      List.iter (fun op -> add_str buf (Trace.op_to_string op)) ops;
      k_ops
    | Ping { rid } ->
      add_int buf rid;
      k_ping
    | Snapshot { rid; active } ->
      add_int buf rid;
      add_bool buf active;
      k_snapshot
    | Bye -> k_bye
  in
  frame ~kind (Buffer.to_bytes buf)

let fault_code_tag = function
  | F_bad_frame -> 1
  | F_bad_op -> 2
  | F_draining -> 3
  | F_internal -> 4

let fault_code_of_tag = function
  | 1 -> F_bad_frame
  | 2 -> F_bad_op
  | 3 -> F_draining
  | 4 -> F_internal
  | t -> fail "unknown fault code %d" t

let encode_response r =
  let buf = Buffer.create 64 in
  let kind =
    match r with
    | Welcome { session; server; protocol } ->
      add_int buf session;
      add_str buf server;
      add_int buf protocol;
      k_welcome
    | Results { rid; outcomes } ->
      add_int buf rid;
      add_int buf (List.length outcomes);
      List.iter (encode_outcome buf) outcomes;
      k_results
    | Fault { rid; code; message } ->
      add_int buf rid;
      Buffer.add_uint8 buf (fault_code_tag code);
      add_str buf message;
      k_fault
    | Pong { rid } ->
      add_int buf rid;
      k_pong
  in
  frame ~kind (Buffer.to_bytes buf)

let parse_op line =
  try Trace.op_of_string line
  with Failure msg -> fail "op: %s" msg

let parse_request ~kind body =
  let pos = ref 0 in
  if kind = k_hello then begin
    let client = read_str body pos in
    let protocol = read_int body pos in
    Hello { client; protocol }
  end
  else if kind = k_ops then begin
    let rid = read_int body pos in
    let ops = read_list ~min_elt:9 body pos (fun b pos -> parse_op (read_str b pos)) in
    Ops { rid; ops }
  end
  else if kind = k_ping then Ping { rid = read_int body pos }
  else if kind = k_snapshot then begin
    let rid = read_int body pos in
    let active = read_bool body pos in
    Snapshot { rid; active }
  end
  else if kind = k_bye then Bye
  else fail "kind %d is not a request" kind

let parse_response ~kind body =
  let pos = ref 0 in
  if kind = k_welcome then begin
    let session = read_int body pos in
    let server = read_str body pos in
    let protocol = read_int body pos in
    Welcome { session; server; protocol }
  end
  else if kind = k_results then begin
    let rid = read_int body pos in
    let outcomes = read_list ~min_elt:2 body pos (fun b pos -> decode_outcome b ~pos) in
    Results { rid; outcomes }
  end
  else if kind = k_fault then begin
    let rid = read_int body pos in
    let code = fault_code_of_tag (read_u8 body pos) in
    let message = read_str body pos in
    Fault { rid; code; message }
  end
  else if kind = k_pong then Pong { rid = read_int body pos }
  else fail "kind %d is not a response" kind

(* --- streaming decoder --- *)

module Decoder = struct
  type 'a t = {
    parse : kind:int -> bytes -> 'a;
    request_side : bool;
    max_frame : int;
    mutable buf : bytes;
    mutable start : int;  (* first unconsumed byte *)
    mutable len : int;  (* bytes buffered from [start] *)
    mutable poisoned : error option;
  }

  let make ~request_side ~max_frame parse =
    { parse; request_side; max_frame; buf = Bytes.create 4096; start = 0;
      len = 0; poisoned = None }

  let create_request ?(max_frame = max_frame_default) () =
    make ~request_side:true ~max_frame (fun ~kind body ->
        parse_request ~kind body)

  let create_response ?(max_frame = max_frame_default) () =
    make ~request_side:false ~max_frame (fun ~kind body ->
        parse_response ~kind body)

  let buffered t = t.len

  (* Ensure room for [extra] more bytes past the live region, moving the
     live region to offset 0 first when that alone frees enough. *)
  let reserve t extra =
    let cap = Bytes.length t.buf in
    if t.start + t.len + extra > cap then begin
      if t.len + extra <= cap then begin
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end
      else begin
        let cap' = max (t.len + extra) (2 * cap) in
        let buf' = Bytes.create cap' in
        Bytes.blit t.buf t.start buf' 0 t.len;
        t.buf <- buf';
        t.start <- 0
      end
    end

  let feed t src ~off ~len =
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Wire.Decoder.feed: invalid slice";
    (* A poisoned stream swallows input: the connection is about to be
       dropped anyway, and retaining bytes would only grow the buffer. *)
    if t.poisoned = None && len > 0 then begin
      reserve t len;
      Bytes.blit src off t.buf (t.start + t.len) len;
      t.len <- t.len + len
    end

  let peek_u8 t i = Bytes.get_uint8 t.buf (t.start + i)

  let peek_u32 t i =
    Int32.to_int (Bytes.get_int32_le t.buf (t.start + i)) land 0xFFFFFFFF

  let poison t e =
    t.poisoned <- Some e;
    t.len <- 0;
    Some (Error e)

  let next t =
    match t.poisoned with
    | Some e -> Some (Error e)
    | None ->
      if t.len < header_bytes then None
      else begin
        let m = (peek_u8 t 0 lsl 8) lor peek_u8 t 1 in
        if m <> (magic0 lsl 8) lor magic1 then poison t (Bad_magic m)
        else if peek_u8 t 2 <> protocol_version then
          poison t (Bad_version (peek_u8 t 2))
        else begin
          let kind = peek_u8 t 3 in
          let wrong_side =
            if t.request_side then kind >= 128 else kind < 128
          in
          let known =
            List.mem kind
              [ k_hello; k_ops; k_ping; k_bye; k_snapshot; k_welcome;
                k_results; k_fault; k_pong ]
          in
          if (not known) || wrong_side then poison t (Unknown_kind kind)
          else begin
            let blen = peek_u32 t 4 in
            if blen > t.max_frame then
              poison t (Oversized { length = blen; limit = t.max_frame })
            else if t.len < header_bytes + blen then None
            else begin
              let expected = peek_u32 t 8 in
              (* Fresh copy: the decoded frame must not alias the ring
                 buffer, which the next [feed] overwrites. *)
              let body = Bytes.sub t.buf (t.start + header_bytes) blen in
              t.start <- t.start + header_bytes + blen;
              t.len <- t.len - (header_bytes + blen);
              if t.len = 0 then t.start <- 0;
              let got = crc body in
              if got <> expected then poison t (Bad_crc { expected; got })
              else
                match t.parse ~kind body with
                | v -> Some (Ok v)
                | exception Failure msg -> poison t (Malformed msg)
            end
          end
        end
      end
end

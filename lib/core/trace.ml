module Bitmap = Hyper_util.Bitmap

type payload =
  | P_internal
  | P_text of string
  | P_form of int * int
  | P_draw

type op =
  | Begin
  | Commit
  | Abort
  | Clear_caches
  | Create of {
      oid : Oid.t;
      doc : int;
      uid : int;
      ten : int;
      hundred : int;
      million : int;
      near : Oid.t option;
      payload : payload;
    }
  | Add_child of { parent : Oid.t; child : Oid.t }
  | Add_children of { parent : Oid.t; children : Oid.t list }
  | Add_part of { whole : Oid.t; part : Oid.t }
  | Add_parts of { whole : Oid.t; parts : Oid.t list }
  | Add_ref of { src : Oid.t; dst : Oid.t; offset_from : int; offset_to : int }
  | Remove_child of { parent : Oid.t; child : Oid.t }
  | Remove_part of { whole : Oid.t; part : Oid.t }
  | Remove_ref of { src : Oid.t; dst : Oid.t }
  | Delete of Oid.t
  | Set_hundred of { oid : Oid.t; value : int }
  | Set_text of { oid : Oid.t; value : string }
  | Set_dyn of { oid : Oid.t; key : string; value : int }
  | Text_edit of Oid.t
  | Form_edit of { oid : Oid.t; x : int; y : int; w : int; h : int }
  | Lookup_unique of { doc : int; uid : int }
  | Range_unique of { doc : int; lo : int; hi : int }
  | Range_hundred of { doc : int; lo : int; hi : int }
  | Range_million of { doc : int; lo : int; hi : int }
  | Attrs of Oid.t
  | Dyn_attr of { oid : Oid.t; key : string }
  | Children of Oid.t
  | Parent of Oid.t
  | Parts of Oid.t
  | Part_of of Oid.t
  | Refs_to of Oid.t
  | Refs_from of Oid.t
  | Text of Oid.t
  | Form_digest of Oid.t
  | Scan of int
  | Node_count of int
  | Closure_1n of Oid.t
  | Closure_mn of Oid.t
  | Closure_mnatt of { start : Oid.t; depth : int }
  | Closure_1n_att_sum of Oid.t
  | Closure_1n_att_set of Oid.t
  | Closure_1n_pred of { start : Oid.t; x : int }
  | Closure_link_sum of { start : Oid.t; depth : int }
  | Verify_checks
  (* primitives added for the wire protocol: a remote Backend.S
     (Hyper_net.Client_backend) needs every backend capability to be
     expressible as one reified op *)
  | Doc_oids of int
  | Store_results of Oid.t list
  | Form_get of Oid.t
  | Form_set of { oid : Oid.t; width : int; height : int; data : string }

let is_mutation = function
  | Create _ | Add_child _ | Add_children _ | Add_part _ | Add_parts _
  | Add_ref _ | Remove_child _ | Remove_part _ | Remove_ref _ | Delete _
  | Set_hundred _ | Set_text _ | Set_dyn _ | Text_edit _ | Form_edit _
  | Closure_1n _ | Closure_mn _ | Closure_mnatt _ | Closure_1n_att_set _
  | Store_results _ | Form_set _ ->
    true
  | Begin | Commit | Abort | Clear_caches | Lookup_unique _ | Range_unique _
  | Range_hundred _ | Range_million _ | Attrs _ | Dyn_attr _ | Children _
  | Parent _ | Parts _ | Part_of _ | Refs_to _ | Refs_from _ | Text _
  | Form_digest _ | Scan _ | Node_count _ | Closure_1n_att_sum _
  | Closure_1n_pred _ | Closure_link_sum _ | Verify_checks | Doc_oids _
  | Form_get _ ->
    false

type value =
  | V_unit
  | V_int of int
  | V_int_opt of int option
  | V_ints of int list
  | V_oids of Oid.t list
  | V_links of (Oid.t * int * int) list
  | V_pairs of (Oid.t * int) list
  | V_string of string
  | V_checks of (string * bool) list
  | V_form of int * int * string  (* width, height, packed payload *)

type outcome = Done of value | Raised of string

let outcome_equal (a : outcome) (b : outcome) = a = b

let elide to_s l =
  let n = List.length l in
  if n <= 12 then "[" ^ String.concat ";" (List.map to_s l) ^ "]"
  else
    Printf.sprintf "[%s;... %d total]"
      (String.concat ";" (List.map to_s (List.filteri (fun i _ -> i < 12) l)))
      n

let value_to_string = function
  | V_unit -> "()"
  | V_int n -> string_of_int n
  | V_int_opt None -> "none"
  | V_int_opt (Some n) -> Printf.sprintf "some %d" n
  | V_ints l -> elide string_of_int l
  | V_oids l -> elide string_of_int l
  | V_links l ->
    elide (fun (t, f, o) -> Printf.sprintf "%d/%d/%d" t f o) l
  | V_pairs l -> elide (fun (o, d) -> Printf.sprintf "%d@%d" o d) l
  | V_string s ->
    if String.length s <= 32 then Printf.sprintf "%S" s
    else Printf.sprintf "%S..(%d bytes)" (String.sub s 0 32) (String.length s)
  | V_checks l ->
    elide (fun (name, ok) -> Printf.sprintf "%s=%b" name ok) l
  | V_form (w, h, data) ->
    Printf.sprintf "form %dx%d (%d bytes, hash %d)" w h (String.length data)
      (Hashtbl.hash data)

let outcome_to_string = function
  | Done v -> value_to_string v
  | Raised cls -> "raised " ^ cls

(* --- application --- *)

let to_schema_payload = function
  | P_internal -> Schema.P_internal
  | P_text s -> Schema.P_text s
  | P_form (w, h) -> Schema.P_form (Bitmap.create ~width:w ~height:h)
  | P_draw -> Schema.P_draw

let sorted_oids arr = List.sort compare (Array.to_list arr)

let link_triple l = (l.Schema.target, l.Schema.offset_from, l.Schema.offset_to)

let kind_code = function
  | Schema.Internal -> 0
  | Schema.Text -> 1
  | Schema.Form -> 2
  | Schema.Draw -> 3

let apply ?(reraise = fun _ -> false) ~layout
    (Backend.Instance ((module B), b) : Backend.instance) op : outcome =
  let module O = Ops.Make (B) in
  let module V = Verify.Make (B) in
  try
    Done
      (match op with
      | Begin ->
        B.begin_txn b;
        V_unit
      | Commit ->
        B.commit b;
        V_unit
      | Abort ->
        B.abort b;
        V_unit
      | Clear_caches ->
        B.clear_caches b;
        V_unit
      | Create { oid; doc; uid; ten; hundred; million; near; payload } ->
        B.create_node ?near b
          { Schema.oid; doc; unique_id = uid; ten; hundred; million;
            payload = to_schema_payload payload };
        V_unit
      | Add_child { parent; child } ->
        B.add_child b ~parent ~child;
        V_unit
      | Add_children { parent; children } ->
        B.add_children b ~parent (Array.of_list children);
        V_unit
      | Add_part { whole; part } ->
        B.add_part b ~whole ~part;
        V_unit
      | Add_parts { whole; parts } ->
        B.add_parts b ~whole (Array.of_list parts);
        V_unit
      | Add_ref { src; dst; offset_from; offset_to } ->
        B.add_ref b ~src ~dst ~offset_from ~offset_to;
        V_unit
      | Remove_child { parent; child } ->
        B.remove_child b ~parent ~child;
        V_unit
      | Remove_part { whole; part } ->
        B.remove_part b ~whole ~part;
        V_unit
      | Remove_ref { src; dst } ->
        B.remove_ref b ~src ~dst;
        V_unit
      | Delete oid ->
        B.delete_node b oid;
        V_unit
      | Set_hundred { oid; value } ->
        B.set_hundred b oid value;
        V_unit
      | Set_text { oid; value } ->
        B.set_text b oid value;
        V_unit
      | Set_dyn { oid; key; value } ->
        B.set_dyn_attr b oid key value;
        V_unit
      | Text_edit oid ->
        O.text_node_edit b ~oid;
        V_unit
      | Form_edit { oid; x; y; w; h } ->
        O.form_node_edit b ~oid ~x ~y ~w ~h;
        V_unit
      | Lookup_unique { doc; uid } -> V_int_opt (B.lookup_unique b ~doc uid)
      | Range_unique { doc; lo; hi } ->
        V_oids (List.sort Oid.compare (B.range_unique b ~doc ~lo ~hi))
      | Range_hundred { doc; lo; hi } ->
        V_oids (List.sort Oid.compare (B.range_hundred b ~doc ~lo ~hi))
      | Range_million { doc; lo; hi } ->
        V_oids (List.sort Oid.compare (B.range_million b ~doc ~lo ~hi))
      | Attrs oid ->
        V_ints
          [ kind_code (B.kind b oid); B.unique_id b oid; B.ten b oid;
            B.hundred b oid; B.million b oid ]
      | Dyn_attr { oid; key } -> V_int_opt (B.dyn_attr b oid key)
      | Children oid -> V_oids (Array.to_list (B.children b oid))
      | Parent oid -> V_int_opt (B.parent b oid)
      | Parts oid -> V_oids (Array.to_list (B.parts b oid))
      | Part_of oid -> V_oids (sorted_oids (B.part_of b oid))
      | Refs_to oid ->
        V_links (List.map link_triple (Array.to_list (B.refs_to b oid)))
      | Refs_from oid ->
        V_links
          (List.sort compare
             (List.map link_triple (Array.to_list (B.refs_from b oid))))
      | Text oid -> V_string (B.text b oid)
      | Form_digest oid ->
        let f = B.form b oid in
        V_ints
          [ Bitmap.width f; Bitmap.height f; Bitmap.count_set f;
            Hashtbl.hash (Bytes.to_string (Bitmap.to_bytes f)) ]
      | Scan doc ->
        (* Visit order is an access-path artefact; expose only
           order-insensitive aggregates. *)
        let count = ref 0 and sum_ten = ref 0 and sum_oid = ref 0 in
        B.iter_doc b ~doc (fun oid ->
            incr count;
            sum_ten := !sum_ten + B.ten b oid;
            sum_oid := !sum_oid + oid);
        V_ints [ !count; !sum_ten; !sum_oid ]
      | Node_count doc -> V_int (B.node_count b ~doc)
      | Closure_1n start -> V_oids (O.closure_1n b ~start)
      | Closure_mn start -> V_oids (O.closure_mn b ~start)
      | Closure_mnatt { start; depth } ->
        V_oids (O.closure_mnatt b ~start ~depth)
      | Closure_1n_att_sum start -> V_int (O.closure_1n_att_sum b ~start)
      | Closure_1n_att_set start -> V_int (O.closure_1n_att_set b ~start)
      | Closure_1n_pred { start; x } -> V_oids (O.closure_1n_pred b ~start ~x)
      | Closure_link_sum { start; depth } ->
        V_pairs (O.closure_mnatt_link_sum b ~start ~depth)
      | Verify_checks ->
        (* Details of failing checks can embed backend-specific exception
           messages; compare (name, verdict) only. *)
        V_checks
          (List.map
             (fun c -> (c.Verify.name, c.Verify.ok))
             (V.run ~reraise b layout))
      | Doc_oids doc ->
        (* Visit order is an access-path artefact (cf. Scan); expose the
           membership, sorted. *)
        let acc = ref [] in
        B.iter_doc b ~doc (fun oid -> acc := oid :: !acc);
        V_oids (List.sort Oid.compare !acc)
      | Store_results oids ->
        B.store_result_list b oids;
        V_unit
      | Form_get oid ->
        let f = B.form b oid in
        V_form
          (Bitmap.width f, Bitmap.height f,
           Bytes.to_string (Bitmap.to_bytes f))
      | Form_set { oid; width; height; data } ->
        let f = Bitmap.of_bytes (Bytes.of_string data) in
        if Bitmap.width f <> width || Bitmap.height f <> height then
          invalid_arg "Trace: form-set dimensions disagree with payload";
        B.set_form b oid f;
        V_unit)
  with
  | e when reraise e -> raise e
  | Invalid_argument _ -> Raised "Invalid_argument"
  | Failure _ -> Raised "Failure"
  | e ->
    (* Outcome normalisation is this function's purpose: any backend
       exception becomes a comparable Raised value.  Crash faults were
       already re-raised by the guarded case above. *)
    (Raised (Printexc.exn_slot_name e) [@lint.allow "no-catchall-swallow"])

(* --- serialisation --- *)

let string_of_near = function None -> 0 | Some oid -> oid

let payload_to_string = function
  | P_internal -> "internal"
  | P_draw -> "draw"
  | P_form (w, h) -> Printf.sprintf "form %d %d" w h
  | P_text s -> Printf.sprintf "text %S" s

let op_to_string = function
  | Begin -> "begin"
  | Commit -> "commit"
  | Abort -> "abort"
  | Clear_caches -> "clear-caches"
  | Create { oid; doc; uid; ten; hundred; million; near; payload } ->
    Printf.sprintf "create %d %d %d %d %d %d %d %s" oid doc uid ten hundred
      million (string_of_near near)
      (payload_to_string payload)
  | Add_child { parent; child } -> Printf.sprintf "add-child %d %d" parent child
  | Add_children { parent; children } ->
    Printf.sprintf "add-children %d %s" parent
      (String.concat " " (List.map string_of_int children))
  | Add_part { whole; part } -> Printf.sprintf "add-part %d %d" whole part
  | Add_parts { whole; parts } ->
    Printf.sprintf "add-parts %d %s" whole
      (String.concat " " (List.map string_of_int parts))
  | Add_ref { src; dst; offset_from; offset_to } ->
    Printf.sprintf "add-ref %d %d %d %d" src dst offset_from offset_to
  | Remove_child { parent; child } ->
    Printf.sprintf "remove-child %d %d" parent child
  | Remove_part { whole; part } -> Printf.sprintf "remove-part %d %d" whole part
  | Remove_ref { src; dst } -> Printf.sprintf "remove-ref %d %d" src dst
  | Delete oid -> Printf.sprintf "delete %d" oid
  | Set_hundred { oid; value } -> Printf.sprintf "set-hundred %d %d" oid value
  | Set_text { oid; value } -> Printf.sprintf "set-text %d %S" oid value
  | Set_dyn { oid; key; value } ->
    Printf.sprintf "set-dyn %d %s %d" oid key value
  | Text_edit oid -> Printf.sprintf "text-edit %d" oid
  | Form_edit { oid; x; y; w; h } ->
    Printf.sprintf "form-edit %d %d %d %d %d" oid x y w h
  | Lookup_unique { doc; uid } -> Printf.sprintf "lookup-unique %d %d" doc uid
  | Range_unique { doc; lo; hi } ->
    Printf.sprintf "range-unique %d %d %d" doc lo hi
  | Range_hundred { doc; lo; hi } ->
    Printf.sprintf "range-hundred %d %d %d" doc lo hi
  | Range_million { doc; lo; hi } ->
    Printf.sprintf "range-million %d %d %d" doc lo hi
  | Attrs oid -> Printf.sprintf "attrs %d" oid
  | Dyn_attr { oid; key } -> Printf.sprintf "dyn-attr %d %s" oid key
  | Children oid -> Printf.sprintf "children %d" oid
  | Parent oid -> Printf.sprintf "parent %d" oid
  | Parts oid -> Printf.sprintf "parts %d" oid
  | Part_of oid -> Printf.sprintf "part-of %d" oid
  | Refs_to oid -> Printf.sprintf "refs-to %d" oid
  | Refs_from oid -> Printf.sprintf "refs-from %d" oid
  | Text oid -> Printf.sprintf "text %d" oid
  | Form_digest oid -> Printf.sprintf "form-digest %d" oid
  | Scan doc -> Printf.sprintf "scan %d" doc
  | Node_count doc -> Printf.sprintf "node-count %d" doc
  | Closure_1n oid -> Printf.sprintf "closure-1n %d" oid
  | Closure_mn oid -> Printf.sprintf "closure-mn %d" oid
  | Closure_mnatt { start; depth } ->
    Printf.sprintf "closure-mnatt %d %d" start depth
  | Closure_1n_att_sum oid -> Printf.sprintf "closure-1n-att-sum %d" oid
  | Closure_1n_att_set oid -> Printf.sprintf "closure-1n-att-set %d" oid
  | Closure_1n_pred { start; x } -> Printf.sprintf "closure-1n-pred %d %d" start x
  | Closure_link_sum { start; depth } ->
    Printf.sprintf "closure-link-sum %d %d" start depth
  | Verify_checks -> "verify"
  | Doc_oids doc -> Printf.sprintf "doc-oids %d" doc
  | Store_results oids ->
    Printf.sprintf "store-results %s"
      (String.concat " " (List.map string_of_int oids))
  | Form_get oid -> Printf.sprintf "form-get %d" oid
  | Form_set { oid; width; height; data } ->
    Printf.sprintf "form-set %d %d %d %S" oid width height data

let bad line = failwith (Printf.sprintf "Trace.op_of_string: %S" line)

(* Split into whitespace tokens; a trailing quoted string (the only kind
   the grammar produces) is handled by the per-op parsers below. *)
let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* The remainder of [line] after its first [n] space-separated tokens —
   used to recover a trailing %S-quoted string verbatim. *)
let rest_after line n =
  let len = String.length line in
  let rec skip i remaining =
    if remaining = 0 then i
    else if i >= len then len
    else begin
      let j = ref i in
      while !j < len && line.[!j] <> ' ' do incr j done;
      while !j < len && line.[!j] = ' ' do incr j done;
      skip !j (remaining - 1)
    end
  in
  let start = skip (let i = ref 0 in
                    while !i < len && line.[!i] = ' ' do incr i done;
                    !i)
      n
  in
  String.sub line start (len - start)

let parse_quoted line s =
  try Scanf.sscanf s "%S" (fun x -> x) with Scanf.Scan_failure _ | End_of_file -> bad line

let op_of_string line =
  let int s = match int_of_string_opt s with Some n -> n | None -> bad line in
  match tokens line with
  | [ "begin" ] -> Begin
  | [ "commit" ] -> Commit
  | [ "abort" ] -> Abort
  | [ "clear-caches" ] -> Clear_caches
  | "create" :: oid :: doc :: uid :: ten :: hundred :: million :: near :: rest
    ->
    let payload =
      match rest with
      | [ "internal" ] -> P_internal
      | [ "draw" ] -> P_draw
      | [ "form"; w; h ] -> P_form (int w, int h)
      | "text" :: _ -> P_text (parse_quoted line (rest_after line 9))
      | _ -> bad line
    in
    let near = int near in
    Create
      { oid = int oid; doc = int doc; uid = int uid; ten = int ten;
        hundred = int hundred; million = int million;
        near = (if near = 0 then None else Some near); payload }
  | [ "add-child"; p; c ] -> Add_child { parent = int p; child = int c }
  | "add-children" :: p :: cs ->
    Add_children { parent = int p; children = List.map int cs }
  | [ "add-part"; w; p ] -> Add_part { whole = int w; part = int p }
  | "add-parts" :: w :: ps -> Add_parts { whole = int w; parts = List.map int ps }
  | [ "add-ref"; s; d; f; t ] ->
    Add_ref { src = int s; dst = int d; offset_from = int f; offset_to = int t }
  | [ "remove-child"; p; c ] -> Remove_child { parent = int p; child = int c }
  | [ "remove-part"; w; p ] -> Remove_part { whole = int w; part = int p }
  | [ "remove-ref"; s; d ] -> Remove_ref { src = int s; dst = int d }
  | [ "delete"; oid ] -> Delete (int oid)
  | [ "set-hundred"; oid; v ] -> Set_hundred { oid = int oid; value = int v }
  | "set-text" :: oid :: _ ->
    Set_text { oid = int oid; value = parse_quoted line (rest_after line 2) }
  | [ "set-dyn"; oid; key; v ] -> Set_dyn { oid = int oid; key; value = int v }
  | [ "text-edit"; oid ] -> Text_edit (int oid)
  | [ "form-edit"; oid; x; y; w; h ] ->
    Form_edit { oid = int oid; x = int x; y = int y; w = int w; h = int h }
  | [ "lookup-unique"; doc; uid ] ->
    Lookup_unique { doc = int doc; uid = int uid }
  | [ "range-unique"; doc; lo; hi ] ->
    Range_unique { doc = int doc; lo = int lo; hi = int hi }
  | [ "range-hundred"; doc; lo; hi ] ->
    Range_hundred { doc = int doc; lo = int lo; hi = int hi }
  | [ "range-million"; doc; lo; hi ] ->
    Range_million { doc = int doc; lo = int lo; hi = int hi }
  | [ "attrs"; oid ] -> Attrs (int oid)
  | [ "dyn-attr"; oid; key ] -> Dyn_attr { oid = int oid; key }
  | [ "children"; oid ] -> Children (int oid)
  | [ "parent"; oid ] -> Parent (int oid)
  | [ "parts"; oid ] -> Parts (int oid)
  | [ "part-of"; oid ] -> Part_of (int oid)
  | [ "refs-to"; oid ] -> Refs_to (int oid)
  | [ "refs-from"; oid ] -> Refs_from (int oid)
  | [ "text"; oid ] -> Text (int oid)
  | [ "form-digest"; oid ] -> Form_digest (int oid)
  | [ "scan"; doc ] -> Scan (int doc)
  | [ "node-count"; doc ] -> Node_count (int doc)
  | [ "closure-1n"; oid ] -> Closure_1n (int oid)
  | [ "closure-mn"; oid ] -> Closure_mn (int oid)
  | [ "closure-mnatt"; s; d ] -> Closure_mnatt { start = int s; depth = int d }
  | [ "closure-1n-att-sum"; oid ] -> Closure_1n_att_sum (int oid)
  | [ "closure-1n-att-set"; oid ] -> Closure_1n_att_set (int oid)
  | [ "closure-1n-pred"; s; x ] -> Closure_1n_pred { start = int s; x = int x }
  | [ "closure-link-sum"; s; d ] ->
    Closure_link_sum { start = int s; depth = int d }
  | [ "verify" ] -> Verify_checks
  | [ "doc-oids"; doc ] -> Doc_oids (int doc)
  | "store-results" :: oids -> Store_results (List.map int oids)
  | [ "form-get"; oid ] -> Form_get (int oid)
  | "form-set" :: oid :: width :: height :: _ ->
    Form_set
      { oid = int oid; width = int width; height = int height;
        data = parse_quoted line (rest_after line 4) }
  | _ -> bad line

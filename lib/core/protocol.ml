open Hyper_util

type measurement = {
  op : string;
  reps : int;
  nodes_cold : int;
  nodes_warm : int;
  cold_ms : float;
  warm_ms : float;
}

let per_node ms nodes = if nodes = 0 then 0.0 else ms /. float_of_int nodes

let cold_ms_per_node m = per_node m.cold_ms m.nodes_cold
let warm_ms_per_node m = per_node m.warm_ms m.nodes_warm

let nodes_per_op m =
  if m.reps = 0 then 0.0 else float_of_int m.nodes_cold /. float_of_int m.reps

type config = { reps : int; seed : int64; depth : int }

let default_config = { reps = 50; seed = 0x5EEDL; depth = 25 }

module Obs = Hyper_obs.Obs

let h_op_ns =
  Obs.Histogram.make "hyper_op_ns"
    ~help:"total (wall + virtual) ns per timed benchmark batch"

let op_ids =
  [ "01"; "02"; "03"; "04"; "05A"; "05B"; "06"; "07A"; "07B"; "08"; "09";
    "10"; "11"; "12"; "13"; "14"; "15"; "16"; "17"; "18" ]

module Make (B : Backend.S) = struct
  module O = Ops.Make (B)

  (* One benchmark sequence: cold batch (caches dropped first), commit
     inside the window, then the warm batch over the same inputs.  Each
     batch is also a span root, so a trace dump shows the closure's
     page-fetch tree per temperature. *)
  let sequence b ~op ~reps thunks =
    let batch temp =
      let r, span =
        Obs.Span.with_span
          (Printf.sprintf "%s.%s" op temp)
          (fun () ->
            Vclock.time (fun () ->
                B.begin_txn b;
                let n = Array.fold_left (fun acc f -> acc + f ()) 0 thunks in
                B.commit b;
                n))
      in
      Obs.Histogram.observe h_op_ns (Vclock.total_ns span);
      (r, span)
    in
    B.clear_caches b;
    let nodes_cold, cold_span = batch "cold" in
    let nodes_warm, warm_span = batch "warm" in
    B.clear_caches b;
    { op; reps; nodes_cold; nodes_warm;
      cold_ms = Vclock.total_ms cold_span;
      warm_ms = Vclock.total_ms warm_span }

  (* Input thunks per operation.  Inputs are drawn before timing starts. *)
  let thunks_for config layout rng b id =
    let doc = layout.Layout.doc in
    let reps = config.reps in
    let mk f = Array.init reps (fun _ -> f ()) in
    match id with
    | "01" ->
      mk (fun () ->
          let uid = Layout.random_uid layout rng in
          fun () ->
            match O.name_lookup b ~doc ~uid with Some _ -> 1 | None -> 0)
    | "02" ->
      mk (fun () ->
          let oid = Layout.random_node layout rng in
          fun () ->
            ignore (O.name_oid_lookup b ~oid : int);
            1)
    | "03" ->
      mk (fun () ->
          let x = Prng.int_in rng 1 91 in
          fun () -> List.length (O.range_lookup_hundred b ~doc ~x))
    | "04" ->
      mk (fun () ->
          let x = Prng.int_in rng 1 990_001 in
          fun () -> List.length (O.range_lookup_million b ~doc ~x))
    | "05A" ->
      mk (fun () ->
          let oid = Layout.random_internal layout rng in
          fun () -> Array.length (O.group_lookup_1n b ~oid))
    | "05B" ->
      mk (fun () ->
          let oid = Layout.random_internal layout rng in
          fun () -> Array.length (O.group_lookup_mn b ~oid))
    | "06" ->
      mk (fun () ->
          let oid = Layout.random_node layout rng in
          fun () -> Array.length (O.group_lookup_mnatt b ~oid))
    | "07A" ->
      mk (fun () ->
          let oid = Layout.random_non_root layout rng in
          fun () ->
            match O.ref_lookup_1n b ~oid with Some _ -> 1 | None -> 0)
    | "07B" ->
      mk (fun () ->
          let oid = Layout.random_non_root layout rng in
          fun () -> Array.length (O.ref_lookup_mn b ~oid))
    | "08" ->
      mk (fun () ->
          let oid = Layout.random_node layout rng in
          fun () -> Array.length (O.ref_lookup_mnatt b ~oid))
    | "09" ->
      (* The paper does not repeat the full scan 50 times; one scan per
         temperature is the established practice. *)
      [| (fun () -> O.seq_scan b ~doc) |]
    | "10" ->
      mk (fun () ->
          let start = Layout.random_level layout rng 3 in
          fun () -> List.length (O.closure_1n b ~start))
    | "11" ->
      mk (fun () ->
          let start = Layout.random_level layout rng 3 in
          fun () ->
            ignore (O.closure_1n_att_sum b ~start : int);
            Layout.closure_size layout ~from_level:3)
    | "12" ->
      mk (fun () ->
          let start = Layout.random_level layout rng 3 in
          fun () -> O.closure_1n_att_set b ~start)
    | "13" ->
      mk (fun () ->
          let start = Layout.random_level layout rng 3 in
          let x = Prng.int_in rng 1 990_001 in
          fun () -> List.length (O.closure_1n_pred b ~start ~x))
    | "14" ->
      mk (fun () ->
          let start = Layout.random_level layout rng 3 in
          fun () -> List.length (O.closure_mn b ~start))
    | "15" ->
      mk (fun () ->
          let start = Layout.random_level layout rng 3 in
          fun () -> List.length (O.closure_mnatt b ~start ~depth:config.depth))
    | "16" ->
      mk (fun () ->
          let oid = Layout.random_text layout rng in
          fun () ->
            O.text_node_edit b ~oid;
            1)
    | "17" ->
      (* Paper: the same form node is used for all fifty repetitions. *)
      let oid = Layout.random_form layout rng in
      mk (fun () ->
          let w = Prng.int_in rng 25 50 and h = Prng.int_in rng 25 50 in
          let x = Prng.int_in rng 0 (100 - 51) in
          let y = Prng.int_in rng 0 (100 - 51) in
          fun () ->
            O.form_node_edit b ~oid ~x ~y ~w ~h;
            1)
    | "18" ->
      mk (fun () ->
          let start = Layout.random_level layout rng 3 in
          fun () ->
            List.length (O.closure_mnatt_link_sum b ~start ~depth:config.depth))
    | other -> invalid_arg (Printf.sprintf "Protocol: unknown op id %S" other)

  let op_label = function
    | "01" -> "01 nameLookup"
    | "02" -> "02 nameOIDLookup"
    | "03" -> "03 rangeLookupHundred"
    | "04" -> "04 rangeLookupMillion"
    | "05A" -> "05A groupLookup1N"
    | "05B" -> "05B groupLookupMN"
    | "06" -> "06 groupLookupMNATT"
    | "07A" -> "07A refLookup1N"
    | "07B" -> "07B refLookupMN"
    | "08" -> "08 refLookupMNATT"
    | "09" -> "09 seqScan"
    | "10" -> "10 closure1N"
    | "11" -> "11 closure1NAttSum"
    | "12" -> "12 closure1NAttSet"
    | "13" -> "13 closure1NPred"
    | "14" -> "14 closureMN"
    | "15" -> "15 closureMNATT"
    | "16" -> "16 textNodeEdit"
    | "17" -> "17 formNodeEdit"
    | "18" -> "18 closureMNATTLINKSUM"
    | other -> other

  let run_op ?(config = default_config) b layout id =
    let rng = Prng.create (Int64.add config.seed (Int64.of_int (Hashtbl.hash id))) in
    let thunks = thunks_for config layout rng b id in
    sequence b ~op:(op_label id) ~reps:(Array.length thunks) thunks

  let run_all ?(config = default_config) b layout =
    List.map (run_op ~config b layout) op_ids
end

(** Multi-user experiments (paper §7, "future work": the impact of a
    multi-user environment on the benchmark).

    Several user threads run update transactions against one shared
    database — each transaction reads a level-3 subtree and rewrites its
    [hundred] attributes (the closure1NAttSet pattern).  Contention is
    controlled by [hot_fraction]: that share of transactions targets a
    single hot subtree, the rest use a per-user private subtree (the
    cooperative, conflict-free case R9 asks for).

    Three concurrency-control modes mirror the era's designs:
    - [Optimistic]: read/write sets are validated at commit
      ({!Hyper_txn.Occ}); losers abort and are counted — the behaviour
      the paper observed ("it is a problem to define update operations
      that do not conflict");
    - [Two_phase_locking]: exclusive locks on every node, timeout counts
      as an abort;
    - [Mvcc]: snapshot-isolation over {!Hyper_txn.Version_store} —
      writers validate first-committer-wins against their read
      timestamp, readers pin a snapshot and never take a lock, so
      read-only sweeps cannot block writers (and vice versa).

    Backend calls are serialised by an internal mutex (the backends are
    single-writer); what is measured is the concurrency-control
    behaviour, not parallel I/O. *)

type mode = Two_phase_locking | Optimistic | Mvcc

val mode_to_string : mode -> string

type result = {
  mode : mode;
  users : int;
  txns_attempted : int;
  committed : int;
  aborted : int;
  retried_ok : int; (** aborted transactions that succeeded on retry *)
  readers : int; (** concurrent whole-structure reader threads *)
  reader_sweeps : int; (** completed read sweeps across all readers *)
  reader_aborts : int; (** sweeps aborted (lock timeout / validation) *)
  wall_ms : float;
  throughput_tps : float; (** committed transactions per wall second *)
}

module Make (B : Backend.S) : sig
  val run :
    ?commit:(unit -> unit -> unit) ->
    ?readers:int ->
    B.t ->
    Layout.t ->
    mode:mode ->
    users:int ->
    txns_per_user:int ->
    hot_fraction:float ->
    seed:int64 ->
    result
  (** [commit] overrides how a transaction's commit point is driven: it
      runs {e inside} the database mutex in place of [B.commit] and
      returns a wait closure the worker runs {e outside} the mutex
      before counting the transaction committed.  This is the seam for
      WAL group commit on a durable disk backend — commit and register
      under the mutex ({!Hyper_storage.Engine.commit_ticket}), await the
      shared fsync outside it ({!Hyper_storage.Engine.await_durable}) so
      concurrent committers coalesce into one barrier.  Default:
      [B.commit] with a no-op wait.

      [readers] (default 0) starts that many threads sweeping every node
      of the structure for the whole run, using the mode's read path:
      shared locks under [Two_phase_locking], validated reads under
      [Optimistic], a pinned lock-free snapshot under [Mvcc].  The wall
      clock and throughput cover the writers only.

      @raise Invalid_argument when [users < 1], [txns_per_user < 1],
      [readers < 0] or [hot_fraction] outside [0, 1]. *)
end

(** Structural verification of a generated test database.

    Proves that a backend's contents satisfy every constraint the paper's
    §5 places on the test database: level population, fanout, ordered
    children, relationship inverses, M-N cardinalities (|1-N| = |M-N| =
    N−1, |refs| = N), attribute ranges, text-node markers and white
    form-node bitmaps.  This is what makes cross-backend benchmark
    numbers comparable — every backend provably holds the same database.
    Also the engine of experiment F1. *)

type check = { name : string; ok : bool; detail : string }

val all_ok : check list -> bool

val failures : check list -> check list

module Make (B : Backend.S) : sig
  val run : ?reraise:(exn -> bool) -> B.t -> Layout.t -> check list
  (** Full verification (visits every node; linear in database size).
      A check that raises is reported as failed with the exception text
      — unless [reraise] returns [true] for it, in which case it
      propagates untouched (used by the fault-injection harness to keep
      [Vfs.Crash] visible through a [Verify_checks] trace op). *)
end

(** Reified backend operations: one serialisable value per {!Backend.S}
    call, with a normalised observable outcome.

    This is the vocabulary of the differential fuzzer ({!Hyper_check}):
    a trace — a list of [op] — can be generated from a PRNG seed, applied
    to any backend, printed to a text file one op per line, parsed back,
    and replayed bit-for-bit.  Applying the same trace to two backends
    holding the same generated database must produce the same outcome at
    every step; any difference is a cross-backend bug.

    Outcome normalisation encodes the cross-backend contract:
    - relations whose order is specified (children, parts, refsTo, every
      closure) are compared {e ordered};
    - inverse relations and index ranges, whose order is an access-path
      artefact (partOf, refsFrom, range lookups), are compared {e sorted};
    - exceptions are compared by class only ([Invalid_argument],
      exception constructor name), never by message — messages carry
      backend names. *)

(** Payload of a reified [create]: forms are always created white, so a
    width/height pair replaces the bitmap. *)
type payload =
  | P_internal
  | P_text of string
  | P_form of int * int  (** width, height *)
  | P_draw

type op =
  (* transactions and cache control *)
  | Begin
  | Commit
  | Abort
  | Clear_caches
  (* mutations *)
  | Create of {
      oid : Oid.t;
      doc : int;
      uid : int;
      ten : int;
      hundred : int;
      million : int;
      near : Oid.t option;
      payload : payload;
    }
  | Add_child of { parent : Oid.t; child : Oid.t }
  | Add_children of { parent : Oid.t; children : Oid.t list }
  | Add_part of { whole : Oid.t; part : Oid.t }
  | Add_parts of { whole : Oid.t; parts : Oid.t list }
  | Add_ref of { src : Oid.t; dst : Oid.t; offset_from : int; offset_to : int }
  | Remove_child of { parent : Oid.t; child : Oid.t }
  | Remove_part of { whole : Oid.t; part : Oid.t }
  | Remove_ref of { src : Oid.t; dst : Oid.t }
  | Delete of Oid.t
  | Set_hundred of { oid : Oid.t; value : int }
  | Set_text of { oid : Oid.t; value : string }
  | Set_dyn of { oid : Oid.t; key : string; value : int }
  | Text_edit of Oid.t  (** op 16 *)
  | Form_edit of { oid : Oid.t; x : int; y : int; w : int; h : int }
      (** op 17 *)
  (* lookups *)
  | Lookup_unique of { doc : int; uid : int }
  | Range_unique of { doc : int; lo : int; hi : int }
  | Range_hundred of { doc : int; lo : int; hi : int }
  | Range_million of { doc : int; lo : int; hi : int }
  (* single-node reads *)
  | Attrs of Oid.t  (** kind, uniqueId, ten, hundred, million *)
  | Dyn_attr of { oid : Oid.t; key : string }
  | Children of Oid.t
  | Parent of Oid.t
  | Parts of Oid.t
  | Part_of of Oid.t
  | Refs_to of Oid.t
  | Refs_from of Oid.t
  | Text of Oid.t
  | Form_digest of Oid.t  (** width, height, set-pixel count, bit digest *)
  (* scans *)
  | Scan of int  (** doc: node count + order-insensitive attribute sums *)
  | Node_count of int  (** doc *)
  (* closures (10, 14, 15 store their result list: mutations) *)
  | Closure_1n of Oid.t
  | Closure_mn of Oid.t
  | Closure_mnatt of { start : Oid.t; depth : int }
  | Closure_1n_att_sum of Oid.t
  | Closure_1n_att_set of Oid.t
  | Closure_1n_pred of { start : Oid.t; x : int }
  | Closure_link_sum of { start : Oid.t; depth : int }
  (* structural verification (compared as (check name, pass) pairs) *)
  | Verify_checks
  (* wire-protocol primitives: every {!Backend.S} capability a remote
     client needs, reified (see {!Hyper_net.Client_backend}) *)
  | Doc_oids of int  (** doc: sorted membership of one structure *)
  | Store_results of Oid.t list  (** persist a closure result list *)
  | Form_get of Oid.t  (** full bitmap: width, height, packed bytes *)
  | Form_set of { oid : Oid.t; width : int; height : int; data : string }
      (** replace a form's bitmap; [data] is {!Hyper_util.Bitmap.to_bytes} *)

val is_mutation : op -> bool
(** Whether the op may change database state (and therefore must run
    inside a transaction on every backend).  [Begin]/[Commit]/[Abort]
    and [Clear_caches] are control ops, not mutations. *)

(** Normalised observable result of one applied op. *)
type value =
  | V_unit
  | V_int of int
  | V_int_opt of int option
  | V_ints of int list
  | V_oids of Oid.t list
  | V_links of (Oid.t * int * int) list
  | V_pairs of (Oid.t * int) list
  | V_string of string
  | V_checks of (string * bool) list
  | V_form of int * int * string
      (** width, height, packed payload ({!Hyper_util.Bitmap.to_bytes}) *)

type outcome =
  | Done of value
  | Raised of string
      (** exception class: ["Invalid_argument"] or the exception's
          constructor name — never the message *)

val outcome_equal : outcome -> outcome -> bool

val outcome_to_string : outcome -> string
(** Compact human-readable rendering (lists elided past a prefix). *)

val apply :
  ?reraise:(exn -> bool) ->
  layout:Layout.t ->
  Backend.instance ->
  op ->
  outcome
(** Apply one op to a backend and normalise the result.  Exceptions are
    captured into [Raised] unless [reraise] returns [true] for them
    (the crash harness lets the fault-injecting VFS's crash exception
    propagate). *)

(** {2 Serialisation} — one op per line, parse-print round trips. *)

val op_to_string : op -> string

val op_of_string : string -> op
(** @raise Failure on a malformed line. *)

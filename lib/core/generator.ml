open Hyper_util

type phase = { label : string; items : int; ms_total : float }

type timings = { phases : phase list }

let ms_per_item p =
  if p.items = 0 then 0.0 else p.ms_total /. float_of_int p.items

module Make (B : Backend.S) = struct
  (* Sample [k] distinct elements of [pool] (all of them when the pool is
     not larger than k). *)
  let sample_distinct rng pool k =
    let n = Array.length pool in
    if n <= k then Array.copy pool
    else begin
      let chosen = Hashtbl.create k in
      let out = Array.make k pool.(0) in
      let filled = ref 0 in
      while !filled < k do
        let i = Prng.int rng n in
        if not (Hashtbl.mem chosen i) then begin
          Hashtbl.add chosen i ();
          out.(!filled) <- pool.(i);
          incr filled
        end
      done;
      out
    end

  let spec_for rng layout oid =
    let doc = layout.Layout.doc in
    let unique_id = Layout.uid_of_oid layout oid in
    let ten = Prng.int_in rng 1 10 in
    let hundred = Prng.int_in rng 1 100 in
    let million = Prng.int_in rng 1 1_000_000 in
    let payload =
      if not (Layout.is_leaf layout oid) then Schema.P_internal
      else if Layout.is_form layout oid then begin
        let width = Prng.int_in rng 100 400 in
        let height = Prng.int_in rng 100 400 in
        Schema.P_form (Bitmap.create ~width ~height)
      end
      else Schema.P_text (Text_gen.generate rng)
    in
    { Schema.oid; doc; unique_id; ten; hundred; million; payload }

  let timed_phase b label f =
    let items = ref 0 in
    let (), span =
      Vclock.time (fun () ->
          B.begin_txn b;
          f items;
          B.commit b)
    in
    { label; items = !items; ms_total = Vclock.total_ms span }

  (* Depth-first enumeration of internal (non-leaf) oids as
     (node, parent) pairs, parents before children. *)
  let dfs_internal layout =
    let acc = ref [] in
    let rec visit oid parent =
      if not (Layout.is_leaf layout oid) then begin
        acc := (oid, parent) :: !acc;
        Array.iter (fun c -> visit c (Some oid)) (Layout.children_of layout oid)
      end
    in
    visit (Layout.root layout) None;
    List.rev !acc

  let generate ?(cluster = true) ?(oid_base = 0) ?fanout b ~doc ~leaf_level
      ~seed =
    let layout = Layout.make ?fanout ~doc ~oid_base ~leaf_level () in
    let fanout = layout.Layout.fanout in
    (* Independent streams per concern so that e.g. attribute values do
       not depend on the creation order chosen by [cluster]. *)
    let master = Prng.create seed in
    let rng_attr = Prng.split master in
    let rng_order = Prng.split master in
    let rng_parts = Prng.split master in
    let rng_refs = Prng.split master in

    (* Attribute specs are drawn in canonical (BFS/oid) order regardless
       of creation order, keeping databases identical across modes. *)
    let specs = Hashtbl.create layout.Layout.node_count in
    Layout.iter_oids layout (fun oid ->
        Hashtbl.add specs oid (spec_for rng_attr layout oid));
    let spec oid = Hashtbl.find specs oid in

    (* Phase 1: internal nodes. *)
    let internal_pairs = dfs_internal layout in
    let internal_order =
      if cluster then internal_pairs
      else begin
        let arr = Array.of_list internal_pairs in
        Prng.shuffle rng_order arr;
        Array.to_list arr
      end
    in
    let phase_internal =
      timed_phase b "create internal nodes" (fun items ->
          List.iter
            (fun (oid, parent) ->
              let near = if cluster then parent else None in
              B.create_node ?near b (spec oid);
              incr items)
            internal_order)
    in

    (* Phase 2: leaf nodes (text and form). *)
    let leaf_first = Layout.level_first_oid layout leaf_level in
    let leaf_count = Layout.level_node_count layout leaf_level in
    let leaf_order = Array.init leaf_count (fun i -> leaf_first + i) in
    if not cluster then Prng.shuffle rng_order leaf_order;
    let phase_leaves =
      timed_phase b "create leaf nodes" (fun items ->
          Array.iter
            (fun oid ->
              let near = if cluster then Layout.parent_of layout oid else None in
              B.create_node ?near b (spec oid);
              incr items)
            leaf_order)
    in

    (* Phase 3: 1-N relationships, in order (the children sequence).
       One batched call per parent: a backend that stores the edge array
       inside the parent record rewrites it once instead of once per
       child (the per-edge version made bulk loading quadratic in the
       fanout). *)
    let phase_one_n =
      timed_phase b "create 1-N relationships" (fun items ->
          Layout.iter_oids layout (fun oid ->
              if not (Layout.is_leaf layout oid) then begin
                let children = Layout.children_of layout oid in
                B.add_children b ~parent:oid children;
                items := !items + Array.length children
              end))
    in

    (* Phase 4: M-N parts — 5 random distinct nodes from the next level
       down, for every non-leaf node. *)
    let level_oids level =
      Array.init (Layout.level_node_count layout level) (fun i ->
          Layout.level_first_oid layout level + i)
    in
    let phase_m_n =
      timed_phase b "create M-N relationships" (fun items ->
          for level = 0 to leaf_level - 1 do
            let pool = level_oids (level + 1) in
            Array.iter
              (fun whole ->
                let chosen = sample_distinct rng_parts pool fanout in
                B.add_parts b ~whole chosen;
                items := !items + Array.length chosen)
              (level_oids level)
          done)
    in

    (* Phase 5: M-N attribute references — visit each node once, refer to
       a random node, offsets uniform in 0..9. *)
    let phase_refs =
      timed_phase b "create M-N attribute references" (fun items ->
          Layout.iter_oids layout (fun src ->
              let dst = Layout.random_node layout rng_refs in
              let offset_from = Prng.int_in rng_refs 0 9 in
              let offset_to = Prng.int_in rng_refs 0 9 in
              B.add_ref b ~src ~dst ~offset_from ~offset_to;
              incr items))
    in
    ( layout,
      { phases =
          [ phase_internal; phase_leaves; phase_one_n; phase_m_n; phase_refs ]
      } )
end

module Make (B : Backend.S) = struct
  module O = Ops.Make (B)

  (* --- E1: schema modification --- *)

  let add_draw_node b ~layout ~oid ~unique_id =
    B.create_node b
      { Schema.oid; doc = layout.Layout.doc; unique_id;
        ten = 1; hundred = 1; million = 1; payload = Schema.P_draw };
    B.add_child b ~parent:(Layout.root layout) ~child:oid

  let add_attribute_everywhere b ~layout ~name ~value =
    let touched = ref 0 in
    Layout.iter_oids layout (fun oid ->
        B.set_dyn_attr b oid name (value oid);
        incr touched);
    !touched

  (* --- E2: versions --- *)

  type versions = string Hyper_txn.Version_store.t

  let create_versions () = Hyper_txn.Version_store.create ()

  (* The chain records the node's content *as of* each timestamp: the
     original text is captured once (on the first versioned edit), and
     every edit appends the post-edit content.  [as_of] then means
     literally "the text at time T". *)
  let edit_with_version vs b oid =
    if Hyper_txn.Version_store.version_count vs ~key:oid = 0 then
      ignore (Hyper_txn.Version_store.put vs ~key:oid (B.text b oid) : int);
    O.text_node_edit b ~oid;
    Hyper_txn.Version_store.put vs ~key:oid (B.text b oid)

  let current_text _vs b oid = B.text b oid

  let previous_version vs oid = Hyper_txn.Version_store.previous vs ~key:oid

  let version_as_of vs oid ~time =
    Hyper_txn.Version_store.as_of vs ~key:oid ~time

  let version_count vs oid = Hyper_txn.Version_store.version_count vs ~key:oid

  let structure_as_of vs b ~start ~time =
    let acc = ref [] in
    let rec visit oid =
      (if B.kind b oid = Schema.Text then
         let content =
           match Hyper_txn.Version_store.as_of vs ~key:oid ~time with
           | Some s -> s
           | None -> (
             (* Before the first recorded state: the original (oldest)
                version when one exists, else the never-edited current. *)
             match
               List.rev (Hyper_txn.Version_store.history vs ~key:oid)
             with
             | (_, oldest) :: _ -> oldest
             | [] -> B.text b oid)
         in
         acc := (oid, content) :: !acc);
      Array.iter visit (B.children b oid)
    in
    visit start;
    List.rev !acc

  let create_variant vs b oid ~variant =
    Hyper_txn.Version_store.put_variant vs ~key:oid ~variant (B.text b oid)

  let variant_text vs oid ~variant =
    Hyper_txn.Version_store.latest_variant vs ~key:oid ~variant

  (* --- E3: access control --- *)

  let demo_two_documents b ~acl ~doc_a ~doc_b ~user =
    Access.set_public acl ~doc:doc_a.Layout.doc ~read:true ~write:false;
    Access.set_public acl ~doc:doc_b.Layout.doc ~read:true ~write:true;
    let can acl_doc perm = Access.allowed acl ~user ~doc:acl_doc perm in
    let read_a = can doc_a.Layout.doc Access.Read in
    let write_a = can doc_a.Layout.doc Access.Write in
    let write_b = can doc_b.Layout.doc Access.Write in
    (* Links across differently protected structures must still work:
       reference A's root from B's root (B is writable by [user]) and
       traverse it back into A (readable). *)
    let root_a = Layout.root doc_a and root_b = Layout.root doc_b in
    Access.check acl ~user ~doc:doc_b.Layout.doc Access.Write;
    B.add_ref b ~src:root_b ~dst:root_a ~offset_from:0 ~offset_to:0;
    let link_works =
      Array.exists
        (fun l -> Oid.equal l.Schema.target root_a)
        (B.refs_to b root_b)
      && can doc_a.Layout.doc Access.Read
      && B.hundred b root_a >= 0
    in
    (read_a, write_a, write_b, link_works)
end

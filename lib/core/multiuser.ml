open Hyper_util

let m_retries =
  Hyper_obs.Obs.Counter.make "hyper_txn_retries_total"
    ~help:"aborted multiuser transactions that succeeded on retry"

type mode = Two_phase_locking | Optimistic | Mvcc

let mode_to_string = function
  | Two_phase_locking -> "2PL"
  | Optimistic -> "OCC"
  | Mvcc -> "MVCC"

type result = {
  mode : mode;
  users : int;
  txns_attempted : int;
  committed : int;
  aborted : int;
  retried_ok : int;
  readers : int;
  reader_sweeps : int;
  reader_aborts : int;
  wall_ms : float;
  throughput_tps : float;
}

module Make (B : Backend.S) = struct
  (* The level-3 subtree (start plus descendants to the leaves) whose
     hundred attributes one transaction rewrites. *)
  let subtree b start =
    let acc = ref [] in
    let rec visit oid =
      acc := oid :: !acc;
      Array.iter visit (B.children b oid)
    in
    visit start;
    List.rev !acc

  let run ?commit ?(readers = 0) b layout ~mode ~users ~txns_per_user
      ~hot_fraction ~seed =
    if users < 1 then invalid_arg "Multiuser.run: users < 1";
    if txns_per_user < 1 then invalid_arg "Multiuser.run: txns_per_user < 1";
    if readers < 0 then invalid_arg "Multiuser.run: readers < 0";
    if hot_fraction < 0.0 || hot_fraction > 1.0 then
      invalid_arg "Multiuser.run: hot_fraction outside [0, 1]";
    let db_mutex = Sync.Mutex.create ~rank:10 "core.multiuser.db" in
    let with_db f = Sync.Mutex.with_lock db_mutex f in
    let level3 = Schema.nodes_at_level 3 in
    let master = Prng.create seed in
    let hot_start = Layout.random_level layout (Prng.split master) 3 in
    (* Each user owns a private level-3 start node, distinct from the
       others and from the hot one, so non-hot transactions never
       conflict. *)
    let private_start u =
      let first = Layout.level_first_oid layout 3 in
      let idx = (Hashtbl.hash (u * 7919) + u) mod level3 in
      let oid = first + idx in
      if Oid.equal oid hot_start then first + ((idx + 1) mod level3) else oid
    in
    let occ = Hyper_txn.Occ.create () in
    let locks = Hyper_txn.Lock_manager.create ~timeout_ms:50.0 () in
    (* The MVCC layer: committed [hundred] images keyed by oid.  Under
       [Mvcc], writers validate and install here (first-committer-wins)
       and readers pin snapshots here — never touching the lock manager
       or, for reads, the database mutex. *)
    let vs = Hyper_txn.Version_store.create () in
    let all_oids =
      let acc = ref [] in
      Layout.iter_oids layout (fun oid -> acc := oid :: !acc);
      List.rev !acc
    in
    (match mode with
    | Mvcc ->
      (* Seed the version store with the committed state so snapshot
         reads resolve every oid without falling back to the backend. *)
      List.iter
        (fun oid ->
          ignore (Hyper_txn.Version_store.put vs ~key:oid (B.hundred b oid)
                   : int))
        all_oids
    | Two_phase_locking | Optimistic -> ());
    let committed = ref 0
    and aborted = ref 0
    and retried_ok = ref 0
    and attempted = ref 0
    and sweeps = ref 0
    and reader_aborted = ref 0 in
    let counter_mutex = Sync.Mutex.create ~rank:40 "core.multiuser.counters" in
    let bump r n =
      Sync.Mutex.lock counter_mutex;
      r := !r + n;
      Sync.Mutex.unlock counter_mutex
    in

    (* The commit seam: the default commits (and, on a durable backend,
       fsyncs) inside the database mutex.  A group-commit caller supplies
       [?commit] returning a wait closure — the commit point stays inside
       the mutex, the durability wait runs outside it, which is what lets
       concurrent committers land in one fsync batch (otherwise the mutex
       serialises the fsyncs and batching never materialises). *)
    let commit_fn =
      match commit with
      | Some f -> f
      | None ->
        fun () ->
          B.commit b;
          fun () -> ()
    in
    (* One transaction body: read the subtree's hundred values, write the
       complemented values back. *)
    let apply_writes oids =
      let wait =
        with_db (fun () ->
            B.begin_txn b;
            List.iter
              (fun oid -> B.set_hundred b oid (99 - B.hundred b oid))
              oids;
            commit_fn ())
      in
      wait ()
    in
    let attempt_occ start =
      let txn = Hyper_txn.Occ.begin_txn occ in
      let oids = with_db (fun () -> subtree b start) in
      List.iter
        (fun oid ->
          Hyper_txn.Occ.note_read txn oid;
          Hyper_txn.Occ.note_write txn oid)
        oids;
      (* Simulated think time widens the validation window. *)
      Thread.yield ();
      if Hyper_txn.Occ.commit txn then begin
        apply_writes oids;
        true
      end
      else false
    in
    let attempt_2pl ~user start =
      let oids = with_db (fun () -> subtree b start) in
      match
        List.iter
          (fun oid ->
            Hyper_txn.Lock_manager.acquire locks ~txn:user ~resource:oid
              Hyper_txn.Lock_manager.Exclusive)
          oids
      with
      | () ->
        apply_writes oids;
        Hyper_txn.Lock_manager.release_all locks ~txn:user;
        true
      | exception Hyper_txn.Lock_manager.Timeout _ ->
        Hyper_txn.Lock_manager.release_all locks ~txn:user;
        false
    in
    let attempt_mvcc start =
      let txn = Hyper_txn.Version_store.begin_rw vs in
      let oids = with_db (fun () -> subtree b start) in
      let writes =
        List.map
          (fun oid ->
            let h =
              match Hyper_txn.Version_store.txn_get txn ~key:oid with
              | Some h -> h
              | None -> 0 (* every oid is preloaded; unreachable *)
            in
            let v = 99 - h in
            Hyper_txn.Version_store.txn_put txn ~key:oid v;
            (oid, v))
          oids
      in
      Thread.yield ();
      (* Validate-and-install AND the backend apply happen inside the
         database mutex, so the backend's apply order is exactly the
         version store's commit order (lock ranks 10 then 20 — legal).
         The durability wait still runs outside it. *)
      let wait =
        with_db (fun () ->
            match Hyper_txn.Version_store.commit txn with
            | Hyper_txn.Version_store.Conflict _ -> None
            | Hyper_txn.Version_store.Committed _ ->
              B.begin_txn b;
              List.iter (fun (oid, v) -> B.set_hundred b oid v) writes;
              Some (commit_fn ()))
      in
      match wait with
      | None -> false
      | Some wait ->
        wait ();
        true
    in
    let worker user =
      Thread.create
        (fun () ->
          let rng = Prng.create (Int64.add seed (Int64.of_int (user * 1000))) in
          for _ = 1 to txns_per_user do
            let hot = Prng.float rng 1.0 < hot_fraction in
            let start = if hot then hot_start else private_start user in
            bump attempted 1;
            let run_once () =
              match mode with
              | Optimistic -> attempt_occ start
              | Two_phase_locking -> attempt_2pl ~user start
              | Mvcc -> attempt_mvcc start
            in
            if run_once () then bump committed 1
            else begin
              bump aborted 1;
              (* One retry, as an interactive application would. *)
              bump attempted 1;
              if run_once () then begin
                bump committed 1;
                bump retried_ok 1;
                Hyper_obs.Obs.Counter.incr m_retries
              end
              else bump aborted 1
            end
          done)
        ()
    in
    (* Reader threads sweep the whole structure concurrently with the
       writers, using the read path the mode dictates:
       - [Mvcc]: a pinned snapshot over the version store — no lock
         manager, no database mutex; writers never wait for it;
       - [Two_phase_locking]: shared locks on every node (negative txn
         ids keep them distinct from writers), a timeout aborts the
         sweep — and meanwhile writers time out against the sweep;
       - [Optimistic]: reads noted in an OCC transaction validated at
         the end; a concurrent writer invalidates the sweep. *)
    let stop = ref false in
    (* Simulated per-node processing: the sweep is a {e long-running}
       read transaction.  The sleep releases the runtime lock so the
       writers actually run mid-sweep, while whatever read protection
       the mode uses stays in force for milliseconds at a time — which
       is what makes the configurations diverge: a 2PL sweep holds its
       shared locks across the sleeps, an MVCC sweep holds nothing.
       The same think time applies to every mode — only the protection
       differs. *)
    let think i = if i land 31 = 0 then Thread.delay 0.0002 in
    let reader_sweep_mvcc () =
      let snap = Hyper_txn.Version_store.begin_snapshot vs in
      let sum = ref 0 in
      List.iteri
        (fun i oid ->
          think i;
          match Hyper_txn.Version_store.snapshot_get snap ~key:oid with
          | Some h -> sum := !sum + h
          | None -> ())
        all_oids;
      Hyper_txn.Version_store.release snap;
      Sys.opaque_identity !sum >= 0
    in
    let reader_sweep_2pl ~rid =
      match
        List.iter
          (fun oid ->
            Hyper_txn.Lock_manager.acquire locks ~txn:rid ~resource:oid
              Hyper_txn.Lock_manager.Shared)
          all_oids
      with
      | () ->
        List.iteri
          (fun i oid ->
            think i;
            ignore (with_db (fun () -> B.hundred b oid) : int))
          all_oids;
        Hyper_txn.Lock_manager.release_all locks ~txn:rid;
        true
      | exception Hyper_txn.Lock_manager.Timeout _ ->
        Hyper_txn.Lock_manager.release_all locks ~txn:rid;
        false
    in
    let reader_sweep_occ () =
      let txn = Hyper_txn.Occ.begin_txn occ in
      List.iteri
        (fun i oid ->
          think i;
          Hyper_txn.Occ.note_read txn oid;
          ignore (with_db (fun () -> B.hundred b oid) : int))
        all_oids;
      Hyper_txn.Occ.commit txn
    in
    let reader i =
      Thread.create
        (fun () ->
          let rid = -i in
          while not !stop do
            let ok =
              match mode with
              | Mvcc -> reader_sweep_mvcc ()
              | Two_phase_locking -> reader_sweep_2pl ~rid
              | Optimistic -> reader_sweep_occ ()
            in
            if ok then bump sweeps 1 else bump reader_aborted 1;
            Thread.yield ()
          done)
        ()
    in
    let reader_threads = List.init readers (fun i -> reader (i + 1)) in
    (* Let the readers establish themselves (pin a snapshot, or acquire
       their shared locks) before the writer clock starts: the point of
       the reader configurations is writers running {e against} an
       in-progress sweep, not racing one that has not begun. *)
    if readers > 0 then Thread.delay 0.01;
    (* Monotonic wall clock: an NTP step mid-run must not skew the
       reported throughput.  Readers run outside the timed window's
       control — the clock covers the writers only. *)
    let t0 = Mtime_stub.now_ns () in
    let threads = List.init users (fun i -> worker (i + 1)) in
    List.iter Thread.join threads;
    let wall_ms =
      Int64.to_float (Int64.sub (Mtime_stub.now_ns ()) t0) /. 1e6
    in
    stop := true;
    List.iter Thread.join reader_threads;
    { mode; users; txns_attempted = !attempted; committed = !committed;
      aborted = !aborted; retried_ok = !retried_ok; readers;
      reader_sweeps = !sweeps; reader_aborts = !reader_aborted; wall_ms;
      throughput_tps =
        (if wall_ms <= 0.0 then 0.0
         else float_of_int !committed /. (wall_ms /. 1000.0)) }
end

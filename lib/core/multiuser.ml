open Hyper_util

let m_retries =
  Hyper_obs.Obs.Counter.make "hyper_txn_retries_total"
    ~help:"aborted multiuser transactions that succeeded on retry"

type mode = Two_phase_locking | Optimistic

let mode_to_string = function
  | Two_phase_locking -> "2PL"
  | Optimistic -> "OCC"

type result = {
  mode : mode;
  users : int;
  txns_attempted : int;
  committed : int;
  aborted : int;
  retried_ok : int;
  wall_ms : float;
  throughput_tps : float;
}

module Make (B : Backend.S) = struct
  (* The level-3 subtree (start plus descendants to the leaves) whose
     hundred attributes one transaction rewrites. *)
  let subtree b start =
    let acc = ref [] in
    let rec visit oid =
      acc := oid :: !acc;
      Array.iter visit (B.children b oid)
    in
    visit start;
    List.rev !acc

  let run ?commit b layout ~mode ~users ~txns_per_user ~hot_fraction ~seed =
    if users < 1 then invalid_arg "Multiuser.run: users < 1";
    if txns_per_user < 1 then invalid_arg "Multiuser.run: txns_per_user < 1";
    if hot_fraction < 0.0 || hot_fraction > 1.0 then
      invalid_arg "Multiuser.run: hot_fraction outside [0, 1]";
    let db_mutex = Sync.Mutex.create ~rank:10 "core.multiuser.db" in
    let with_db f = Sync.Mutex.with_lock db_mutex f in
    let level3 = Schema.nodes_at_level 3 in
    let master = Prng.create seed in
    let hot_start = Layout.random_level layout (Prng.split master) 3 in
    (* Each user owns a private level-3 start node, distinct from the
       others and from the hot one, so non-hot transactions never
       conflict. *)
    let private_start u =
      let first = Layout.level_first_oid layout 3 in
      let idx = (Hashtbl.hash (u * 7919) + u) mod level3 in
      let oid = first + idx in
      if Oid.equal oid hot_start then first + ((idx + 1) mod level3) else oid
    in
    let occ = Hyper_txn.Occ.create () in
    let locks = Hyper_txn.Lock_manager.create ~timeout_ms:50.0 () in
    let committed = ref 0
    and aborted = ref 0
    and retried_ok = ref 0
    and attempted = ref 0 in
    let counter_mutex = Sync.Mutex.create ~rank:40 "core.multiuser.counters" in
    let bump r n =
      Sync.Mutex.lock counter_mutex;
      r := !r + n;
      Sync.Mutex.unlock counter_mutex
    in

    (* The commit seam: the default commits (and, on a durable backend,
       fsyncs) inside the database mutex.  A group-commit caller supplies
       [?commit] returning a wait closure — the commit point stays inside
       the mutex, the durability wait runs outside it, which is what lets
       concurrent committers land in one fsync batch (otherwise the mutex
       serialises the fsyncs and batching never materialises). *)
    let commit_fn =
      match commit with
      | Some f -> f
      | None ->
        fun () ->
          B.commit b;
          fun () -> ()
    in
    (* One transaction body: read the subtree's hundred values, write the
       complemented values back. *)
    let apply_writes oids =
      let wait =
        with_db (fun () ->
            B.begin_txn b;
            List.iter
              (fun oid -> B.set_hundred b oid (99 - B.hundred b oid))
              oids;
            commit_fn ())
      in
      wait ()
    in
    let attempt_occ start =
      let txn = Hyper_txn.Occ.begin_txn occ in
      let oids = with_db (fun () -> subtree b start) in
      List.iter
        (fun oid ->
          Hyper_txn.Occ.note_read txn oid;
          Hyper_txn.Occ.note_write txn oid)
        oids;
      (* Simulated think time widens the validation window. *)
      Thread.yield ();
      if Hyper_txn.Occ.commit txn then begin
        apply_writes oids;
        true
      end
      else false
    in
    let attempt_2pl ~user start =
      let oids = with_db (fun () -> subtree b start) in
      match
        List.iter
          (fun oid ->
            Hyper_txn.Lock_manager.acquire locks ~txn:user ~resource:oid
              Hyper_txn.Lock_manager.Exclusive)
          oids
      with
      | () ->
        apply_writes oids;
        Hyper_txn.Lock_manager.release_all locks ~txn:user;
        true
      | exception Hyper_txn.Lock_manager.Timeout _ ->
        Hyper_txn.Lock_manager.release_all locks ~txn:user;
        false
    in
    let worker user =
      Thread.create
        (fun () ->
          let rng = Prng.create (Int64.add seed (Int64.of_int (user * 1000))) in
          for _ = 1 to txns_per_user do
            let hot = Prng.float rng 1.0 < hot_fraction in
            let start = if hot then hot_start else private_start user in
            bump attempted 1;
            let run_once () =
              match mode with
              | Optimistic -> attempt_occ start
              | Two_phase_locking -> attempt_2pl ~user start
            in
            if run_once () then bump committed 1
            else begin
              bump aborted 1;
              (* One retry, as an interactive application would. *)
              bump attempted 1;
              if run_once () then begin
                bump committed 1;
                bump retried_ok 1;
                Hyper_obs.Obs.Counter.incr m_retries
              end
              else bump aborted 1
            end
          done)
        ()
    in
    (* Monotonic wall clock: an NTP step mid-run must not skew the
       reported throughput. *)
    let t0 = Mtime_stub.now_ns () in
    let threads = List.init users (fun i -> worker (i + 1)) in
    List.iter Thread.join threads;
    let wall_ms =
      Int64.to_float (Int64.sub (Mtime_stub.now_ns ()) t0) /. 1e6
    in
    { mode; users; txns_attempted = !attempted; committed = !committed;
      aborted = !aborted; retried_ok = !retried_ok; wall_ms;
      throughput_tps =
        (if wall_ms <= 0.0 then 0.0
         else float_of_int !committed /. (wall_ms /. 1000.0)) }
end

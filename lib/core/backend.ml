(** The storage-backend interface every database under test implements.

    The 20 benchmark operations ({!Ops}), the generator ({!Generator}),
    the verifier ({!Verify}) and the protocol driver ({!Protocol}) are
    all functors over this signature, so the paper's requirement that
    operations be "described at a conceptual level, suitable for
    transformation to different actual database management systems"
    (abstract) is realised literally: one definition, three databases.

    Conventions:
    - Operations returning nodes return OIDs (references), never copies —
      paper §6: "it is assumed to be a reference to a node and not a copy
      of the node itself".
    - [doc] identifies one test structure; several structures can coexist
      in a database (required for [seqScan], §6.4.1: the extension of
      class Node cannot be used).
    - Mutating calls must happen inside [begin_txn] … [commit]/[abort].
*)

module type S = sig
  type t

  val name : string
  (** Short backend identifier (e.g. ["memdb"]). *)

  val description : string
  (** One line: what paper-era system this models. *)

  (** {2 Transactions (R8) and cache control} *)

  val begin_txn : t -> unit
  val commit : t -> unit
  val abort : t -> unit

  val clear_caches : t -> unit
  (** Make the next operation sequence a *cold* run: drop client buffer
      pools and caches, as "close the database" (paper §6(e)).  A no-op
      for purely in-memory backends — which is itself the measured
      difference. *)

  (** {2 Node creation} *)

  val create_node : ?near:Oid.t -> t -> Schema.node_spec -> unit
  (** [near] is a physical clustering hint: place the new node close to
      an existing one.  The generator passes the 1-N parent when
      clustering along the aggregation hierarchy (paper §5.2); backends
      without physical placement ignore it.
      @raise Invalid_argument when the OID already exists. *)

  val add_child : t -> parent:Oid.t -> child:Oid.t -> unit
  (** Append to the parent's *ordered* children sequence and set the
      child's parent (1-N aggregation). *)

  val add_part : t -> whole:Oid.t -> part:Oid.t -> unit
  (** M-N aggregation. *)

  val add_children : t -> parent:Oid.t -> Oid.t array -> unit
  (** Append the whole array to the parent's ordered children sequence —
      semantically [Array.iter (add_child …)], but backends that encode
      the edge array inside the parent's record amortize it into one
      record rewrite instead of one per edge (the bulk-load path of the
      generator, which otherwise rewrites a fanout-5 parent five
      times). *)

  val add_parts : t -> whole:Oid.t -> Oid.t array -> unit
  (** Batch form of {!add_part}, same contract as {!add_children}. *)

  val add_ref :
    t -> src:Oid.t -> dst:Oid.t -> offset_from:int -> offset_to:int -> unit
  (** M-N association with attributes. *)

  (** {2 Structural modification}

      The paper's §5.2 N.B. requires that structures be mutable ("it
      should be possible to increase and decrease the number of levels,
      the fanouts, …"); the successor benchmarks (OO7) time these
      operations explicitly. *)

  val remove_child : t -> parent:Oid.t -> child:Oid.t -> unit
  (** Unlink from the ordered children sequence (the remaining sequence
      keeps its order); clears the child's parent.
      @raise Invalid_argument when the edge does not exist. *)

  val remove_part : t -> whole:Oid.t -> part:Oid.t -> unit
  (** Remove one M-N aggregation edge.
      @raise Invalid_argument when the edge does not exist. *)

  val remove_ref : t -> src:Oid.t -> dst:Oid.t -> unit
  (** Remove the first matching reference (and its inverse).
      @raise Invalid_argument when no such reference exists. *)

  val delete_node : t -> Oid.t -> unit
  (** Delete a node: detaches it from its parent, removes every M-N edge
      and reference in both directions, drops its payload and all index
      entries, and frees its storage.
      @raise Invalid_argument when the node still has children (delete
      bottom-up) or does not exist. *)

  (** {2 Attribute access} *)

  val kind : t -> Oid.t -> Schema.kind
  val unique_id : t -> Oid.t -> int
  val ten : t -> Oid.t -> int
  val hundred : t -> Oid.t -> int
  val million : t -> Oid.t -> int

  val set_hundred : t -> Oid.t -> int -> unit
  (** Used by closure1NAttSet (op 12); must maintain any index on the
      attribute. *)

  val set_dyn_attr : t -> Oid.t -> string -> int -> unit
  (** Dynamically added attribute (R4 schema-modification extension). *)

  val dyn_attr : t -> Oid.t -> string -> int option

  (** {2 Associative lookup} *)

  val lookup_unique : t -> doc:int -> int -> Oid.t option
  (** Key lookup on [uniqueId] (op 01). *)

  val range_unique : t -> doc:int -> lo:int -> hi:int -> Oid.t list

  val range_hundred : t -> doc:int -> lo:int -> hi:int -> Oid.t list
  (** Range predicate on [hundred] (op 03; 10% selectivity). *)

  val range_million : t -> doc:int -> lo:int -> hi:int -> Oid.t list
  (** Range predicate on [million] (op 04; 1% selectivity). *)

  (** {2 Relationship traversal} *)

  val prefetch_nodes : t -> Oid.t list -> unit
  (** Hint that the nodes are about to be read (e.g. the children of the
      node a closure just visited).  Disk-backed stores resolve the oids
      through the object table and fetch the backing pages as one
      batched group transfer ({!Hyper_storage.Buffer_pool.prefetch});
      in-memory backends do nothing.  A pure hint: unknown oids and
      cache-resident nodes are skipped, results of subsequent reads are
      unchanged. *)

  val children : t -> Oid.t -> Oid.t array
  (** Ordered (op 05A). *)

  val parent : t -> Oid.t -> Oid.t option
  val parts : t -> Oid.t -> Oid.t array
  val part_of : t -> Oid.t -> Oid.t array
  val refs_to : t -> Oid.t -> Schema.link array
  val refs_from : t -> Oid.t -> Schema.link array

  (** {2 Content} *)

  val text : t -> Oid.t -> string
  (** @raise Invalid_argument on a non-text node. *)

  val set_text : t -> Oid.t -> string -> unit

  val form : t -> Oid.t -> Hyper_util.Bitmap.t
  (** @raise Invalid_argument on a non-form node. *)

  val set_form : t -> Oid.t -> Hyper_util.Bitmap.t -> unit

  (** {2 Scans and result storage} *)

  val iter_doc : t -> doc:int -> (Oid.t -> unit) -> unit
  (** Visit every node of one structure (op 09), without relying on the
      class extent. *)

  val node_count : t -> doc:int -> int

  val store_result_list : t -> Oid.t list -> unit
  (** Persist a list of node references (closure results "should itself
      be storable in the database", §6). *)

  (** {2 Snapshots} *)

  val snapshot : t -> t option
  (** A consistent, fully detached read-only view of the current
      committed state, or [None] when the backend cannot produce one
      cheaply (the disk and relational engines version pages, not
      objects; the socket backend has no local state).  Must be called
      outside a transaction.  The view is a first-class backend value:
      reads on it are unaffected by later writes to the original, and
      writing to it never affects the original.  The MVCC server uses
      this to serve read-only snapshot sessions that bypass the engine
      lease. *)

  (** {2 Introspection} *)

  val io_description : t -> string
  (** Human-readable I/O counters since the last reset. *)

  val reset_io : t -> unit
end

(** First-class backend bundled with an instance — lets callers hold
    heterogeneous backends in one collection (e.g. to verify the same
    database on every engine in a loop). *)
type instance = Instance : (module S with type t = 'a) * 'a -> instance

let instance_name (Instance ((module B), _)) = B.name

let instance_description (Instance ((module B), _)) = B.description

let instance_snapshot (Instance ((module B), b)) =
  Option.map (fun s -> Instance ((module B : S with type t = B.t), s))
    (B.snapshot b)

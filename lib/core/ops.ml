module Obs = Hyper_obs.Obs

module Make (B : Backend.S) = struct
  (* --- 6.1 Name lookup --- *)

  let name_lookup b ~doc ~uid =
    Option.map (fun oid -> B.hundred b oid) (B.lookup_unique b ~doc uid)

  let name_oid_lookup b ~oid = B.hundred b oid

  (* --- 6.2 Range lookup --- *)

  let range_lookup_hundred b ~doc ~x = B.range_hundred b ~doc ~lo:x ~hi:(x + 9)

  let range_lookup_million b ~doc ~x =
    B.range_million b ~doc ~lo:x ~hi:(x + 9999)

  (* --- 6.3 Group lookup --- *)

  let group_lookup_1n b ~oid = B.children b oid

  let group_lookup_mn b ~oid = B.parts b oid

  let group_lookup_mnatt b ~oid =
    Array.map (fun l -> l.Schema.target) (B.refs_to b oid)

  (* --- 6.4 Reference lookup --- *)

  let ref_lookup_1n b ~oid = B.parent b oid

  let ref_lookup_mn b ~oid = B.part_of b oid

  let ref_lookup_mnatt b ~oid =
    Array.map (fun l -> l.Schema.target) (B.refs_from b oid)

  (* --- 6.4.1 Sequential scan --- *)

  let seq_scan b ~doc =
    Obs.Span.with_span "seqScan" (fun () ->
        let visited = ref 0 in
        B.iter_doc b ~doc (fun oid ->
            (* The ten attribute is retrieved to force node access, but no
               result is returned (paper: "no result was actually
               returned"). *)
            ignore (B.ten b oid : int);
            incr visited);
        !visited)

  (* --- 6.5 Closure traversals ---

     Before recursing into a fan-out, the closures hand the whole edge
     array to [B.prefetch_nodes]: a disk backend batch-fetches the pages
     of the nodes about to be visited (one group transfer on a remote
     channel instead of a round trip per page), in-memory backends
     ignore the hint.  Traversal order and results are unchanged. *)

  let prefetch_fanout b oids =
    if Array.length oids > 1 then B.prefetch_nodes b (Array.to_list oids)

  let closure_1n b ~start =
    Obs.Span.with_span "closure1N" (fun () ->
        let acc = ref [] in
        let rec visit oid =
          acc := oid :: !acc;
          let cs = B.children b oid in
          prefetch_fanout b cs;
          Array.iter visit cs
        in
        visit start;
        let result = List.rev !acc in
        B.store_result_list b result;
        result)

  let closure_mn b ~start =
    Obs.Span.with_span "closureMN" (fun () ->
        let seen = Hashtbl.create 64 in
        let acc = ref [] in
        let rec visit oid =
          if not (Hashtbl.mem seen oid) then begin
            Hashtbl.add seen oid ();
            acc := oid :: !acc;
            let ps = B.parts b oid in
            prefetch_fanout b ps;
            Array.iter visit ps
          end
        in
        visit start;
        let result = List.rev !acc in
        B.store_result_list b result;
        result)

  (* Depth-bounded breadth-first walk over refsTo.  In generated
     databases every node has exactly one outgoing reference, so this is
     a single path that may run into a cycle; the general graph walk
     below also handles hand-built databases with fan-out. *)
  let refs_walk b ~start ~depth f =
    let seen = Hashtbl.create 64 in
    let frontier = ref [ (start, 0) ] in
    let level = ref 0 in
    Hashtbl.add seen start ();
    f start 0;
    while !frontier <> [] && !level < depth do
      incr level;
      (* The frontier nodes' records are read below for their refsTo
         arrays; batch-fetch them when the walk actually fans out. *)
      (match !frontier with
      | _ :: _ :: _ -> B.prefetch_nodes b (List.map fst !frontier)
      | _ -> ());
      let next = ref [] in
      List.iter
        (fun (oid, dist) ->
          Array.iter
            (fun link ->
              let target = link.Schema.target in
              if not (Hashtbl.mem seen target) then begin
                Hashtbl.add seen target ();
                let d = dist + link.Schema.offset_to in
                f target d;
                next := (target, d) :: !next
              end)
            (B.refs_to b oid))
        !frontier;
      frontier := List.rev !next
    done

  let closure_mnatt b ~start ~depth =
    Obs.Span.with_span "closureMNATT" (fun () ->
        let acc = ref [] in
        refs_walk b ~start ~depth (fun oid _ -> acc := oid :: !acc);
        let result = List.rev !acc in
        B.store_result_list b result;
        result)

  (* --- 6.6 Other closure operations --- *)

  let closure_1n_att_sum b ~start =
    Obs.Span.with_span "closure1NAttSum" (fun () ->
        let sum = ref 0 in
        let rec visit oid =
          sum := !sum + B.hundred b oid;
          let cs = B.children b oid in
          prefetch_fanout b cs;
          Array.iter visit cs
        in
        visit start;
        !sum)

  let closure_1n_att_set b ~start =
    Obs.Span.with_span "closure1NAttSet" (fun () ->
        let updated = ref 0 in
        let rec visit oid =
          B.set_hundred b oid (99 - B.hundred b oid);
          incr updated;
          let cs = B.children b oid in
          prefetch_fanout b cs;
          Array.iter visit cs
        in
        visit start;
        !updated)

  let closure_1n_pred b ~start ~x =
    Obs.Span.with_span "closure1NPred" (fun () ->
        let hi = x + 9999 in
        let acc = ref [] in
        let rec visit oid =
          let m = B.million b oid in
          (* In-range nodes are excluded and terminate the recursion. *)
          if m < x || m > hi then begin
            acc := oid :: !acc;
            let cs = B.children b oid in
            prefetch_fanout b cs;
            Array.iter visit cs
          end
        in
        visit start;
        List.rev !acc)

  let closure_mnatt_link_sum b ~start ~depth =
    Obs.Span.with_span "closureMNATTLINKSUM" (fun () ->
        let acc = ref [] in
        refs_walk b ~start ~depth (fun oid dist -> acc := (oid, dist) :: !acc);
        List.rev !acc)

  (* --- 6.7 Editing --- *)

  let text_node_edit b ~oid =
    let s = B.text b oid in
    (* After a forward edit the text contains both markers, so probe for
       "version-2" first: its presence means this is the second run and
       we substitute back (paper §6.7). *)
    let replaced =
      match
        Hyper_util.Text_gen.replace_first s ~old_sub:"version-2"
          ~new_sub:"version1"
      with
      | Some s' -> Some s'
      | None ->
        Hyper_util.Text_gen.replace_first s ~old_sub:"version1"
          ~new_sub:"version-2"
    in
    match replaced with
    | Some s' -> B.set_text b oid s'
    | None -> invalid_arg "textNodeEdit: node contains no version marker"

  let form_node_edit b ~oid ~x ~y ~w ~h =
    let bitmap = B.form b oid in
    Hyper_util.Bitmap.invert_rect bitmap ~x ~y ~w ~h;
    B.set_form b oid bitmap
end

type check = { name : string; ok : bool; detail : string }

let all_ok checks = List.for_all (fun c -> c.ok) checks

let failures checks = List.filter (fun c -> not c.ok) checks

module Make (B : Backend.S) = struct
  (* A raising check is a failed check — except for exceptions the
     caller declares transparent (fault-injection crash points must
     reach the harness, not drown as a "failed" row). *)
  let check ~reraise name f =
    match f () with
    | None -> { name; ok = true; detail = "ok" }
    | Some detail -> { name; ok = false; detail }
    | exception e when not (reraise e) ->
      { name; ok = false; detail = Printexc.to_string e }

  (* Fold over oids, returning the first failure description. *)
  let first_failure layout f =
    let result = ref None in
    (try
       Layout.iter_oids layout (fun oid ->
           match f oid with
           | None -> ()
           | Some d ->
             result := Some d;
             raise Exit)
     with Exit -> ());
    !result

  let run ?(reraise = fun _ -> false) b layout =
    let check name f = check ~reraise name f in
    let doc = layout.Layout.doc in
    let n = layout.Layout.node_count in
    [
      check "node count matches Σ 5^i" (fun () ->
          let got = B.node_count b ~doc in
          if got = n then None
          else Some (Printf.sprintf "expected %d nodes, found %d" n got));
      check "kinds: internal above leaves, text/form at leaf level" (fun () ->
          first_failure layout (fun oid ->
              let expected =
                if not (Layout.is_leaf layout oid) then Schema.Internal
                else if Layout.is_form layout oid then Schema.Form
                else Schema.Text
              in
              let got = B.kind b oid in
              if got = expected then None
              else
                Some
                  (Printf.sprintf "oid %d: expected %s, got %s" oid
                     (Schema.kind_to_string expected)
                     (Schema.kind_to_string got))));
      check "uniqueId dense and indexed" (fun () ->
          first_failure layout (fun oid ->
              let uid = Layout.uid_of_oid layout oid in
              if B.unique_id b oid <> uid then
                Some (Printf.sprintf "oid %d: wrong uniqueId" oid)
              else
                match B.lookup_unique b ~doc uid with
                | Some o when Oid.equal o oid -> None
                | Some o ->
                  Some (Printf.sprintf "uid %d resolves to %d, not %d" uid o oid)
                | None -> Some (Printf.sprintf "uid %d not found" uid)));
      check "attribute ranges (ten, hundred, million)" (fun () ->
          first_failure layout (fun oid ->
              let bad name v lo hi =
                if v < lo || v > hi then
                  Some (Printf.sprintf "oid %d: %s = %d outside [%d, %d]" oid name v lo hi)
                else None
              in
              match bad "ten" (B.ten b oid) 1 10 with
              | Some d -> Some d
              | None -> (
                match bad "hundred" (B.hundred b oid) 1 100 with
                | Some d -> Some d
                | None -> bad "million" (B.million b oid) 1 1_000_000)));
      check "1-N: ordered children match the BFS tree" (fun () ->
          first_failure layout (fun oid ->
              let expected = Layout.children_of layout oid in
              let got = B.children b oid in
              if got = expected then None
              else Some (Printf.sprintf "oid %d: children sequence differs" oid)));
      check "1-N: parent is the inverse of children" (fun () ->
          first_failure layout (fun oid ->
              let expected = Layout.parent_of layout oid in
              if B.parent b oid = expected then None
              else Some (Printf.sprintf "oid %d: wrong parent" oid)));
      check "M-N: fanout distinct next-level parts per non-leaf node" (fun () ->
          first_failure layout (fun oid ->
              if Layout.is_leaf layout oid then
                if B.parts b oid = [||] then None
                else Some (Printf.sprintf "leaf %d has parts" oid)
              else begin
                let parts = B.parts b oid in
                if Array.length parts <> layout.Layout.fanout then
                  Some
                    (Printf.sprintf "oid %d: %d parts" oid (Array.length parts))
                else begin
                  let level = Layout.level_of_oid layout oid in
                  let distinct =
                    List.length
                      (List.sort_uniq Oid.compare (Array.to_list parts))
                    = Array.length parts
                  in
                  if not distinct then
                    Some (Printf.sprintf "oid %d: duplicate parts" oid)
                  else
                    Array.fold_left
                      (fun acc p ->
                        match acc with
                        | Some _ -> acc
                        | None ->
                          if Layout.level_of_oid layout p = level + 1 then None
                          else
                            Some
                              (Printf.sprintf
                                 "oid %d: part %d not on next level" oid p))
                      None parts
                end
              end));
      check "M-N: partOf is the inverse of parts" (fun () ->
          first_failure layout (fun oid ->
              let wholes = B.part_of b oid in
              Array.fold_left
                (fun acc w ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    if Array.exists (fun p -> Oid.equal p oid) (B.parts b w)
                    then None
                    else
                      Some
                        (Printf.sprintf "oid %d: partOf %d lacks inverse" oid w))
                None wholes));
      check "M-N relationship count = N - 1" (fun () ->
          let total = ref 0 in
          Layout.iter_oids layout (fun oid ->
              total := !total + Array.length (B.parts b oid));
          if !total = n - 1 then None
          else Some (Printf.sprintf "expected %d M-N edges, found %d" (n - 1) !total));
      check "refs: one outgoing reference per node, offsets in 0..9" (fun () ->
          first_failure layout (fun oid ->
              match B.refs_to b oid with
              | [| link |] ->
                if
                  link.Schema.offset_from >= 0 && link.Schema.offset_from <= 9
                  && link.Schema.offset_to >= 0 && link.Schema.offset_to <= 9
                then None
                else Some (Printf.sprintf "oid %d: offsets out of range" oid)
              | refs ->
                Some
                  (Printf.sprintf "oid %d: %d outgoing refs" oid
                     (Array.length refs))));
      check "refs: refsFrom is the inverse of refsTo" (fun () ->
          first_failure layout (fun oid ->
              let incoming = B.refs_from b oid in
              Array.fold_left
                (fun acc link ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    let src = link.Schema.target in
                    if
                      Array.exists
                        (fun l -> Oid.equal l.Schema.target oid)
                        (B.refs_to b src)
                    then None
                    else
                      Some
                        (Printf.sprintf "oid %d: refFrom %d lacks inverse" oid
                           src))
                None incoming));
      check "text nodes: version1 markers and 10..100 words" (fun () ->
          first_failure layout (fun oid ->
              if
                Layout.is_leaf layout oid && not (Layout.is_form layout oid)
              then begin
                let s = B.text b oid in
                let words = String.split_on_char ' ' s in
                let count = List.length words in
                let marker = Hyper_util.Text_gen.marker in
                if count < 10 || count > 100 then
                  Some (Printf.sprintf "oid %d: %d words" oid count)
                else if
                  List.nth words 0 <> marker
                  || List.nth words ((count - 1) / 2) <> marker
                  || List.nth words (count - 1) <> marker
                then Some (Printf.sprintf "oid %d: markers missing" oid)
                else None
              end
              else None));
      check "form nodes: white bitmaps, 100..400 pixels a side" (fun () ->
          first_failure layout (fun oid ->
              if Layout.is_form layout oid then begin
                let bm = B.form b oid in
                let w = Hyper_util.Bitmap.width bm in
                let h = Hyper_util.Bitmap.height bm in
                if w < 100 || w > 400 || h < 100 || h > 400 then
                  Some (Printf.sprintf "oid %d: %dx%d" oid w h)
                else if Hyper_util.Bitmap.count_set bm <> 0 then
                  Some (Printf.sprintf "oid %d: not white" oid)
                else None
              end
              else None));
      check "range lookup agrees with a full scan" (fun () ->
          let expected = ref [] in
          Layout.iter_oids layout (fun oid ->
              let h = B.hundred b oid in
              if h >= 40 && h <= 49 then expected := oid :: !expected);
          let got =
            List.sort Oid.compare (B.range_hundred b ~doc ~lo:40 ~hi:49)
          in
          if got = List.sort Oid.compare !expected then None
          else
            Some
              (Printf.sprintf "index returned %d nodes, scan %d"
                 (List.length got) (List.length !expected)));
    ]
end
